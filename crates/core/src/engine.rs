//! The streaming inference engine: the canonical way to run traffic
//! through a compiled SpliDT pipeline, plus the backend-agnostic
//! [`Classifier`] contract shared by SpliDT and every baseline.
//!
//! Three layers (paper analogy in parentheses):
//!
//! 1. [`Classifier`] / [`Trainable`] — one train/classify/footprint
//!    contract implemented by [`PartitionedTree`], NetBeacon, Leo,
//!    per-packet and ideal, so benches and tables compare models through a
//!    single loop (the paper's Table 3 / Figure 2 comparisons).
//! 2. [`EngineBuilder`] → [`Engine`] — compile once, then *stream*:
//!    [`Engine::admit`] registers a flow, [`Engine::ingest`] pushes frames
//!    at timestamps, [`Engine::drain_digests`] lifts verdicts off the
//!    pipeline, [`Engine::report`] scores against ground truth (the
//!    MoonGen → Tofino → digest-collector loop of the testbed).
//! 3. [`ShardedEngine`] — N independent pipeline shards addressed by
//!    canonical flow hash, driven on OS threads: the throughput-scaling
//!    knob (one shard ≙ one hardware pipe; Tofino1 has 4).
//!
//! Digest collation is keyed by the flow's **canonical register slot**
//! (the same index the data plane's `HashFlow` primitive computes), not by
//! any IP heuristic, so attribution is exact even when initiator addresses
//! repeat across flows.

use crate::compile::{
    compile_with, CompileError, CompileOptions, CompiledIo, CompiledModel, LifecyclePolicy,
    RulesSummary,
};
use crate::error::SplidtError;
use crate::model::PartitionedTree;
use crate::resources::{splidt_footprint, ModelFootprint};
use crate::runtime::{
    canonical_flow_index, FlowOutcome, LifecycleStats, RuntimeReport, SlotPressure, PRESSURE_TOP_K,
};
use crate::stream::DigestTap;
use crate::workers::{PinHook, WorkerPool};
use splidt_dataplane::hash::flow_index;
use splidt_dataplane::parser::peek_flow_tuple;
use splidt_dataplane::pipeline::{Digest, Meters, Pipeline, ProcessOutcome, WaveStats};
use splidt_dataplane::program::Program;
use splidt_dataplane::register::owner_lane;
use splidt_dt::metrics::macro_f1;
use splidt_flow::features::catalog;
use splidt_flow::{extract_windows, FlowTrace};
use std::collections::HashMap;

// ---------------------------------------------------------------- verdicts

/// A classification verdict for one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Predicted class.
    pub class: u16,
}

impl From<u16> for Verdict {
    fn from(class: u16) -> Self {
        Self { class }
    }
}

// ------------------------------------------------------------- classifiers

/// The backend-agnostic inference contract: every model the paper compares
/// (SpliDT and the four baselines) classifies whole flows and reports a
/// resource footprint through this trait, so evaluation loops are written
/// once against `&dyn Classifier`.
pub trait Classifier {
    /// Short stable name ("splidt", "netbeacon", …) for tables and logs.
    fn name(&self) -> &'static str;

    /// Number of classes the model separates.
    fn n_classes(&self) -> usize;

    /// Classifies one flow in software.
    fn classify_flow(&self, flow: &FlowTrace) -> Verdict;

    /// Per-flow register/TCAM footprint; `None` for models with no
    /// deployable footprint (the resource-unlimited ideal, the stateless
    /// per-packet model).
    fn footprint(&self) -> Option<ModelFootprint>;

    /// Macro-F1 over labelled flows.
    fn evaluate_flows(&self, flows: &[FlowTrace]) -> f64 {
        let truth: Vec<u16> = flows.iter().map(|f| f.label).collect();
        let preds: Vec<u16> = flows.iter().map(|f| self.classify_flow(f).class).collect();
        macro_f1(&truth, &preds, self.n_classes())
    }
}

/// Models trainable from labelled flows through a uniform entry point.
pub trait Trainable: Classifier + Sized {
    /// Hyper-parameters of the model family.
    type Params;

    /// Trains on labelled flows.
    fn fit(
        flows: &[FlowTrace],
        n_classes: usize,
        params: &Self::Params,
    ) -> Result<Self, SplidtError>;
}

impl Classifier for PartitionedTree {
    fn name(&self) -> &'static str {
        "splidt"
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn classify_flow(&self, flow: &FlowTrace) -> Verdict {
        let windows = extract_windows(flow, self.n_partitions(), catalog());
        Verdict { class: self.predict(&windows).class }
    }

    fn footprint(&self) -> Option<ModelFootprint> {
        Some(splidt_footprint(self))
    }
}

impl Trainable for PartitionedTree {
    type Params = crate::config::SplidtConfig;

    fn fit(
        flows: &[FlowTrace],
        n_classes: usize,
        params: &Self::Params,
    ) -> Result<Self, SplidtError> {
        let wd = splidt_flow::windowed_dataset(flows, params.n_partitions(), n_classes);
        let model = crate::train::train_partitioned(&wd, params, &catalog().hardware_eligible());
        model.validate().map_err(SplidtError::Model)?;
        Ok(model)
    }
}

impl Classifier for crate::baselines::NetBeacon {
    fn name(&self) -> &'static str {
        "netbeacon"
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn classify_flow(&self, flow: &FlowTrace) -> Verdict {
        Verdict { class: self.predict(flow) }
    }

    fn footprint(&self) -> Option<ModelFootprint> {
        Some(crate::baselines::NetBeacon::footprint(self))
    }
}

impl Trainable for crate::baselines::NetBeacon {
    type Params = crate::baselines::NetBeaconParams;

    fn fit(
        flows: &[FlowTrace],
        n_classes: usize,
        params: &Self::Params,
    ) -> Result<Self, SplidtError> {
        Ok(Self::train(flows, n_classes, params))
    }
}

impl Classifier for crate::baselines::Leo {
    fn name(&self) -> &'static str {
        "leo"
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn classify_flow(&self, flow: &FlowTrace) -> Verdict {
        Verdict { class: self.predict(flow) }
    }

    fn footprint(&self) -> Option<ModelFootprint> {
        Some(crate::baselines::Leo::footprint(self))
    }
}

impl Trainable for crate::baselines::Leo {
    type Params = crate::baselines::LeoParams;

    fn fit(
        flows: &[FlowTrace],
        n_classes: usize,
        params: &Self::Params,
    ) -> Result<Self, SplidtError> {
        Ok(Self::train(flows, n_classes, params))
    }
}

impl Classifier for crate::baselines::PerPacket {
    fn name(&self) -> &'static str {
        "per-packet"
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn classify_flow(&self, flow: &FlowTrace) -> Verdict {
        Verdict { class: self.predict(flow) }
    }

    fn footprint(&self) -> Option<ModelFootprint> {
        None // stateless: no per-flow registers to account
    }
}

impl Trainable for crate::baselines::PerPacket {
    type Params = usize; // tree depth

    fn fit(
        flows: &[FlowTrace],
        n_classes: usize,
        params: &Self::Params,
    ) -> Result<Self, SplidtError> {
        Ok(Self::train(flows, n_classes, *params))
    }
}

impl Classifier for crate::baselines::Ideal {
    fn name(&self) -> &'static str {
        "ideal"
    }

    fn n_classes(&self) -> usize {
        crate::baselines::Ideal::n_classes(self)
    }

    fn classify_flow(&self, flow: &FlowTrace) -> Verdict {
        Verdict { class: self.predict(flow) }
    }

    fn footprint(&self) -> Option<ModelFootprint> {
        None // resource-unlimited upper bound: deliberately unaccounted
    }
}

impl Trainable for crate::baselines::Ideal {
    type Params = usize; // tree depth

    fn fit(
        flows: &[FlowTrace],
        n_classes: usize,
        params: &Self::Params,
    ) -> Result<Self, SplidtError> {
        Ok(Self::train(flows, n_classes, *params))
    }
}

// ------------------------------------------------------------------ engine

/// Default register depth (64K flow slots).
pub const DEFAULT_FLOW_SLOTS: usize = 1 << 16;

/// Default inter-flow stagger when batching flows onto one timeline (µs).
pub const DEFAULT_STAGGER_US: u64 = 5_000;

/// Default burst (wave capacity) of the frame hot path: how many packets
/// accumulate before the compiled plan is walked stage-major across the
/// whole wave (see [`Engine::set_burst`]).
pub const DEFAULT_BURST: usize = 32;

/// Builds [`Engine`]s and [`ShardedEngine`]s: configure → compile once →
/// instantiate as many times as needed.
#[derive(Debug, Clone)]
pub struct EngineBuilder<'m> {
    model: &'m PartitionedTree,
    flow_slots: usize,
    stagger_us: u64,
    idle_timeout_us: u64,
    policy: LifecyclePolicy,
    burst: usize,
}

impl<'m> EngineBuilder<'m> {
    /// Starts a builder for `model` with default slots/stagger/timeout
    /// and the flow-agnostic lifecycle policy.
    pub fn new(model: &'m PartitionedTree) -> Self {
        Self {
            model,
            flow_slots: DEFAULT_FLOW_SLOTS,
            stagger_us: DEFAULT_STAGGER_US,
            idle_timeout_us: crate::compile::DEFAULT_IDLE_TIMEOUT_US,
            policy: LifecyclePolicy::default(),
            burst: DEFAULT_BURST,
        }
    }

    /// Wave capacity of the batch hot path (1 = scalar execution;
    /// default [`DEFAULT_BURST`]). See [`Engine::set_burst`].
    pub fn burst(mut self, burst: usize) -> Self {
        self.burst = burst;
        self
    }

    /// Register depth (must be a power of two).
    pub fn flow_slots(mut self, slots: usize) -> Self {
        self.flow_slots = slots;
        self
    }

    /// Inter-flow stagger for batched timelines (µs).
    pub fn stagger_us(mut self, us: u64) -> Self {
        self.stagger_us = us;
        self
    }

    /// Ownership-lane idle timeout (µs): a live flow silent this long
    /// forfeits its slot to the next colliding arrival.
    pub fn idle_timeout_us(mut self, us: u64) -> Self {
        self.idle_timeout_us = us;
        self
    }

    /// Flow-lifecycle policy: TCP-aware admission/release (SYN claims,
    /// FIN/RST in-band release) and per-class pinned eviction. Compiled
    /// into the program's MAT entries.
    pub fn lifecycle_policy(mut self, policy: LifecyclePolicy) -> Self {
        self.policy = policy;
        self
    }

    fn compile_options(&self) -> CompileOptions {
        CompileOptions {
            flow_slots: self.flow_slots,
            idle_timeout_us: self.idle_timeout_us,
            policy: self.policy.clone(),
        }
    }

    /// Compiles the model and instantiates a single-pipeline engine.
    pub fn build(self) -> Result<Engine, SplidtError> {
        let compiled = compile_with(self.model, &self.compile_options())?;
        let mut engine = Engine::from_compiled(self.model.clone(), compiled, self.stagger_us);
        engine.set_burst(self.burst);
        Ok(engine)
    }

    /// Compiles once and instantiates `n_shards` independent pipelines.
    pub fn build_sharded(self, n_shards: usize) -> Result<ShardedEngine, SplidtError> {
        if n_shards == 0 {
            return Err(SplidtError::Config("ShardedEngine needs ≥ 1 shard".into()));
        }
        let compiled = compile_with(self.model, &self.compile_options())?;
        let shards = (0..n_shards)
            .map(|_| {
                let mut engine = Engine::from_parts(
                    self.model.clone(),
                    compiled.program.clone(),
                    compiled.io.clone(),
                    compiled.summary.clone(),
                    self.stagger_us,
                );
                engine.set_burst(self.burst);
                engine
            })
            .collect();
        Ok(ShardedEngine {
            shards,
            flow_slots: self.flow_slots,
            collisions_skipped: 0,
            slot_owner: HashMap::new(),
            placement: Vec::new(),
            pool: None,
            pin_hook: None,
        })
    }
}

/// Summary of one batch pushed through [`Engine::ingest_batch`] (or the
/// sharded equivalent): dispositions tallied per batch instead of
/// returned per packet, digests drained once at the end.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// Frames ingested.
    pub packets: u64,
    /// Frames dropped by pipeline actions.
    pub drops: u64,
    /// Frames that hit the resubmission safety stop.
    pub resubmit_limited: u64,
    /// Frames the parser rejected (skipped, not ingested — excluded from
    /// `packets`). Exact by construction, so ingress reconciliation can
    /// balance received frames against pipeline outcomes end-to-end.
    pub malformed: u64,
    /// Digests the batch produced (already collated for scoring).
    pub digests: Vec<Digest>,
}

impl BatchReport {
    /// Accumulates another batch (shard merge).
    pub fn merge(&mut self, other: BatchReport) {
        self.packets += other.packets;
        self.drops += other.drops;
        self.resubmit_limited += other.resubmit_limited;
        self.malformed += other.malformed;
        self.digests.extend(other.digests);
    }
}

/// A flow admitted into an engine session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admission {
    /// Dense per-session flow id (index into the engine's admitted list).
    pub id: usize,
    /// Timeline offset assigned to the flow's first packet (µs).
    pub base_us: u64,
    /// Canonical register slot the data plane will hash the flow to.
    pub slot: usize,
}

struct AdmittedFlow {
    flow: FlowTrace,
    base_us: u64,
    slot: usize,
}

/// A replacement model handed to [`Engine::stage_model`], compiling to a
/// fresh program on its own thread while the live pipeline keeps serving.
struct StagedModel {
    model: PartitionedTree,
    handle: std::thread::JoinHandle<Result<CompiledModel, CompileError>>,
}

/// A session-oriented streaming engine over one compiled pipeline.
///
/// Lifecycle: [`EngineBuilder::build`] (compile) → [`Engine::admit`] /
/// [`Engine::ingest`] (feed) → [`Engine::report`] (score) →
/// [`Engine::reset`] (reuse the compiled program for a fresh session).
pub struct Engine {
    model: PartitionedTree,
    io: CompiledIo,
    summary: RulesSummary,
    pipeline: Pipeline,
    stagger_us: u64,
    admitted: Vec<AdmittedFlow>,
    /// How many admitted flows [`Engine::ingest_admitted`] has already fed
    /// (so repeated calls feed only newly admitted flows, never replay).
    fed: usize,
    slot_owner: HashMap<usize, usize>,
    collisions_skipped: usize,
    /// Digest collation keyed by canonical register slot.
    collated: HashMap<u64, Vec<(u64, u16)>>,
    /// Decided ownership lanes the controller released on digest drain
    /// (compare-and-release: only when the lane still carries the
    /// digest's fingerprint).
    released_decided: u64,
    /// Pinned lanes released by explicit operator action
    /// ([`Engine::release_pinned`]).
    released_pinned: u64,
    /// A replacement model compiling off-thread, not yet swapped in.
    staged: Option<StagedModel>,
    /// Online trainer mirror: every drained digest is offered to it.
    tap: Option<DigestTap>,
    /// Completed live model swaps this session.
    swaps: u64,
    /// Staging generation: total models ever staged (swapped or not).
    generation: u64,
    /// Wave outcomes of engine-initiated flushes ([`Engine::swap_staged`]
    /// quiescing an open wave) — merged into the next
    /// [`Engine::stream_report`] so no packet's disposition is lost.
    carry_stats: WaveStats,
}

impl Engine {
    /// Wraps an already-compiled model (the compile-once path).
    pub fn from_compiled(model: PartitionedTree, compiled: CompiledModel, stagger_us: u64) -> Self {
        Self::from_parts(model, compiled.program, compiled.io, compiled.summary, stagger_us)
    }

    fn from_parts(
        model: PartitionedTree,
        program: Program,
        io: CompiledIo,
        summary: RulesSummary,
        stagger_us: u64,
    ) -> Self {
        Self {
            model,
            io,
            summary,
            pipeline: Pipeline::new(program),
            stagger_us,
            admitted: Vec::new(),
            fed: 0,
            slot_owner: HashMap::new(),
            collisions_skipped: 0,
            collated: HashMap::new(),
            released_decided: 0,
            released_pinned: 0,
            staged: None,
            tap: None,
            swaps: 0,
            generation: 0,
            carry_stats: WaveStats::default(),
        }
    }

    /// The model this engine executes.
    pub fn model(&self) -> &PartitionedTree {
        &self.model
    }

    /// Compiled-program IO handles (digest layout, standard fields).
    pub fn io(&self) -> &CompiledIo {
        &self.io
    }

    /// Rule accounting of the compiled program.
    pub fn summary(&self) -> &RulesSummary {
        &self.summary
    }

    /// Live pipeline meters.
    pub fn meters(&self) -> &Meters {
        self.pipeline.meters()
    }

    /// The executing program (tables, registers, hit statistics).
    pub fn program(&self) -> &Program {
        self.pipeline.program()
    }

    /// Live register file — the controller-style read view (ownership
    /// lanes, counters, feature slots). Flow-indexed registers live in a
    /// cache-line-coalesced bank; read them by `(register, slot)`.
    pub fn pipeline_registers(&self) -> &splidt_dataplane::register::RegisterFile {
        self.pipeline.registers()
    }

    /// Register depth of the compiled program.
    pub fn flow_slots(&self) -> usize {
        self.io.flow_slots
    }

    /// Flows admitted so far (collision-skipped flows excluded).
    pub fn admitted_flows(&self) -> usize {
        self.admitted.len()
    }

    /// Flows rejected because their register slot was already owned.
    pub fn collisions_skipped(&self) -> usize {
        self.collisions_skipped
    }

    /// Admits a flow at the next staggered timeline offset. Returns `None`
    /// (and counts a collision) when the flow's canonical register slot is
    /// already owned by an earlier admitted flow — shared state would
    /// corrupt both, so colliding flows are surfaced, not silently merged.
    pub fn admit(&mut self, flow: &FlowTrace) -> Option<Admission> {
        let base = 1_000 + self.admitted.len() as u64 * self.stagger_us;
        self.admit_at(flow, base)
    }

    /// Admits a flow at an explicit timeline offset (used by
    /// [`ShardedEngine`] to preserve the global schedule within a shard).
    pub fn admit_at(&mut self, flow: &FlowTrace, base_us: u64) -> Option<Admission> {
        let slot = canonical_flow_index(flow, self.io.flow_slots);
        if self.slot_owner.contains_key(&slot) {
            self.collisions_skipped += 1;
            return None;
        }
        let id = self.admitted.len();
        self.slot_owner.insert(slot, id);
        self.admitted.push(AdmittedFlow { flow: flow.clone(), base_us, slot });
        Some(Admission { id, base_us, slot })
    }

    /// Serializes packet `j` of a flow into an on-wire frame (Ethernet +
    /// flow-size shim + IPv4 + TCP), exactly as the testbed generator
    /// would. Delegates to [`splidt_flow::wire`], the single source of
    /// truth shared with the `splidt-gen` network traffic generator.
    pub fn frame_for(flow: &FlowTrace, j: usize) -> Vec<u8> {
        splidt_flow::wire::frame_for(flow, j)
    }

    /// Like [`Engine::frame_for`], but serializing into a reusable buffer
    /// so batch loops allocate nothing per packet.
    pub fn frame_for_into(flow: &FlowTrace, j: usize, out: &mut Vec<u8>) {
        splidt_flow::wire::frame_for_into(flow, j, out);
    }

    /// Pushes one frame through the pipeline at `ts_us`. Malformed frames
    /// are recoverable errors, not panics. Allocates the returned PHV;
    /// throughput loops use [`Engine::ingest_batch`].
    pub fn ingest(&mut self, frame: &[u8], ts_us: u64) -> Result<ProcessOutcome, SplidtError> {
        let fields = self.io.fields;
        Ok(self.pipeline.process_packet(frame, ts_us, &fields)?)
    }

    /// Reconfigures the wave capacity of the batch hot path: up to
    /// `burst` packets accumulate in the pipeline's preallocated arena
    /// and execute **stage-major** (the compiled plan walked once per
    /// wave) instead of packet-major; `burst == 1` is scalar execution.
    ///
    /// Safe at any burst for compiled SpliDT programs: every
    /// packet-dependent register index the compiler emits derives from
    /// `HashFlow { salt: 0 }` over the canonical flow slot, and the
    /// conflict domain passed to the pipeline is exactly `flow_slots` —
    /// so two packets share a wave only when their register state is
    /// fully disjoint, and same-slot packets serialize in arrival order
    /// (see `Pipeline::set_burst` for the full contract).
    pub fn set_burst(&mut self, burst: usize) {
        self.pipeline.set_burst(burst, self.io.flow_slots);
    }

    /// The configured wave capacity (1 = scalar).
    pub fn burst(&self) -> usize {
        self.pipeline.burst()
    }

    /// Rebuilds the pipeline with the legacy **split** per-stage register
    /// arrays instead of the cache-line-coalesced flow bank — the
    /// differential baseline the bench harness measures the banking win
    /// against (`pps_scaled` vs `pps_scaled_split`). Semantics are
    /// identical (held by the `banked_equals_split` property); only the
    /// memory layout and prefetch behaviour differ. Call before any
    /// traffic: live register state is discarded, session counters stay.
    pub fn use_split_registers(&mut self) {
        let burst = self.pipeline.burst();
        let program = self.pipeline.program().clone();
        self.pipeline = Pipeline::new_split(program);
        self.pipeline.set_burst(burst, self.io.flow_slots);
    }

    /// Streams one frame into the open wave (parse + conflict check;
    /// execution happens when the wave fills, cuts, or flushes). Returns
    /// `false` for malformed frames, which are metered and skipped.
    /// Dispositions accumulate into `stats` as waves retire; callers
    /// finish with [`Engine::stream_report`] (or at least
    /// [`Engine::stream_flush`]) before reading session state.
    pub fn stream_push(&mut self, frame: &[u8], ts_us: u64, stats: &mut WaveStats) -> bool {
        let fields = self.io.fields;
        self.pipeline.wave_push(frame, ts_us, &fields, stats).is_ok()
    }

    /// Runs whatever the open wave holds, leaving the pipeline quiesced.
    pub fn stream_flush(&mut self, stats: &mut WaveStats) {
        let fields = self.io.fields;
        self.pipeline.wave_flush(&fields, stats);
    }

    /// Finishes a streamed batch: flushes the open wave, folds in any
    /// engine-initiated flushes ([`Engine::swap_staged`] mid-stream),
    /// drains + collates digests, and assembles the [`BatchReport`].
    /// `malformed` is the caller's count of [`Engine::stream_push`]
    /// rejects for this batch.
    pub fn stream_report(&mut self, mut stats: WaveStats, malformed: u64) -> BatchReport {
        self.stream_flush(&mut stats);
        stats.merge(&std::mem::take(&mut self.carry_stats));
        BatchReport {
            packets: stats.packets,
            drops: stats.drops,
            resubmit_limited: stats.resubmit_limited,
            malformed,
            digests: self.drain_digests(),
        }
    }

    /// Pushes a whole batch of `(frame, ts_us)` pairs through the
    /// pipeline's allocation-free **burst** path (see
    /// [`Engine::set_burst`]): frames accumulate into waves of up to the
    /// configured burst and execute stage-major, dispositions are
    /// tallied instead of returned one-by-one, and digests are drained
    /// (and collated for scoring) **once per batch** rather than per
    /// packet. Malformed frames are skipped and counted
    /// ([`BatchReport::malformed`]) — an untrusted wire source must not
    /// be able to abort a batch mid-way. The wave is always flushed
    /// before returning, so session state (meters, registers, lifecycle,
    /// digests) is final when the report lands — observationally
    /// identical to scalar per-frame ingest at any burst.
    pub fn ingest_batch<'a, I>(&mut self, frames: I) -> Result<BatchReport, SplidtError>
    where
        I: IntoIterator<Item = (&'a [u8], u64)>,
    {
        let fields = self.io.fields;
        let mut stats = WaveStats::default();
        let mut malformed = 0u64;
        for (frame, ts_us) in frames {
            if self.pipeline.wave_push(frame, ts_us, &fields, &mut stats).is_err() {
                malformed += 1;
            }
        }
        Ok(self.stream_report(stats, malformed))
    }

    /// Feeds every packet of every admitted-but-not-yet-fed flow, merged
    /// into one time-ordered timeline (so many flows are in flight
    /// concurrently and register-state separation is genuinely exercised).
    /// Incremental: calling again after further [`Engine::admit`]s feeds
    /// only the new flows — already-fed packets are never replayed.
    ///
    /// Runs on the batch hot path: one reusable frame buffer, the
    /// pipeline's reusable PHV, digests collated once at the end.
    pub fn ingest_admitted(&mut self) -> Result<(), SplidtError> {
        let mut events: Vec<(u64, usize, usize)> = Vec::new();
        for (i, a) in self.admitted.iter().enumerate().skip(self.fed) {
            for (j, p) in a.flow.packets.iter().enumerate() {
                events.push((a.base_us + p.ts_us, i, j));
            }
        }
        self.fed = self.admitted.len();
        events.sort_unstable();
        let fields = self.io.fields;
        let mut frame = Vec::new();
        for (ts, i, j) in events {
            Self::frame_for_into(&self.admitted[i].flow, j, &mut frame);
            self.pipeline.process_frame(&frame, ts, &fields)?;
        }
        self.drain_digests();
        Ok(())
    }

    /// Drains digests off the pipeline, collating them by canonical
    /// register slot for scoring, and returns them to the caller.
    /// Collation reads the pipeline's flat digest ring by reference; only
    /// the returned owned records allocate (once per batch, never per
    /// packet).
    ///
    /// A **flow-end** verdict digest also releases the flow's slot: if
    /// the ownership lane is still decided and still carries the digest's
    /// fingerprint, the controller frees it (counted in
    /// [`LifecycleStats::evictions_decided`]). Early-exit digests leave
    /// the lane decided — the flow's trailing packets must stay inert —
    /// so those slots are recycled in-band (decided lanes are claimable
    /// on sight) rather than by the controller. A lane already recycled
    /// by a newer flow fails the fingerprint compare and is left alone.
    pub fn drain_digests(&mut self) -> Vec<Digest> {
        let owner_reg = self.io.owner_reg.index();
        for i in 0..self.pipeline.digests().len() {
            let (ts, slot, class, fp, ended) = {
                let d = self.pipeline.digests();
                let v = d.values(i);
                (
                    d.ts_us(i),
                    v[self.io.digest_flow_idx],
                    v[self.io.digest_class] as u16,
                    v[self.io.digest_fp],
                    v[self.io.digest_final] == 1,
                )
            };
            self.collated.entry(slot).or_default().push((ts, class));
            if let Some(tap) = &mut self.tap {
                tap.observe_fp(fp);
            }
            // Pinned classes are exempt from the automatic flow-end
            // release: their lanes persist until the pinned timeout or an
            // explicit `release_pinned` (the operator's call, not the
            // drain loop's).
            if ended && !self.io.policy.pinned_classes.contains(&class) {
                let regs = self.pipeline.registers_mut();
                let cell = regs.read(owner_reg, slot as usize);
                if owner_lane::decided(cell) && owner_lane::fp(cell) == fp {
                    regs.write(owner_reg, slot as usize, owner_lane::FREE);
                    self.released_decided += 1;
                }
            }
        }
        self.pipeline.take_digests()
    }

    // ------------------------------------------------------ live swap

    /// Stages a replacement model: validates it, then launches its
    /// compilation **off-thread** against this engine's exact compile
    /// options (flow slots, idle timeout, lifecycle policy) so the new
    /// program lands in the same resource envelope. The live pipeline is
    /// untouched; [`Engine::swap_staged`] performs the flip. Staging
    /// again before swapping discards the previous staged model.
    pub fn stage_model(&mut self, model: PartitionedTree) -> Result<(), SplidtError> {
        model.validate().map_err(SplidtError::Model)?;
        let opts = CompileOptions {
            flow_slots: self.io.flow_slots,
            idle_timeout_us: self.io.idle_timeout_us,
            policy: self.io.policy.clone(),
        };
        self.discard_staged();
        let input = model.clone();
        let handle = std::thread::spawn(move || compile_with(&input, &opts));
        self.staged = Some(StagedModel { model, handle });
        self.generation += 1;
        Ok(())
    }

    /// Atomically swaps the staged model in (pForest-style): joins the
    /// off-thread compile, then flips the pipeline to the new program
    /// **preserving live flow state** — ownership lanes, pressure
    /// counters, feature slots and lifecycle MAT hit counters all carry
    /// over, pending digests and meters survive, and the session's
    /// controller counters (releases, collation) are untouched. Only the
    /// table contents (the model rules) change. In-flight flows keep
    /// their slots and finish under the new model; per-window scratch
    /// state washes out at the next window boundary.
    ///
    /// Errors if nothing is staged or the staged compile failed; the
    /// live pipeline is left untouched in both cases.
    pub fn swap_staged(&mut self) -> Result<(), SplidtError> {
        let staged = self
            .staged
            .take()
            .ok_or_else(|| SplidtError::Config("no staged model to swap".into()))?;
        let compiled = staged
            .handle
            .join()
            .map_err(|_| SplidtError::Config("staged model compile thread panicked".into()))??;
        // Quiesce the burst path (drain-then-flip): any wave the caller
        // left open via `stream_push` executes to completion under the
        // OLD program, its dispositions parked in `carry_stats` for the
        // next `stream_report`. The swap below then starts from an empty
        // arena — no packet ever straddles two programs.
        let fields = self.io.fields;
        self.pipeline.wave_flush(&fields, &mut self.carry_stats);
        let carry = [(self.io.lifecycle_table, compiled.io.lifecycle_table)];
        self.pipeline.swap_program(compiled.program, &carry);
        self.model = staged.model;
        self.io = compiled.io;
        self.summary = compiled.summary;
        self.swaps += 1;
        Ok(())
    }

    /// Drops any staged-but-unswapped model, joining its compile thread.
    fn discard_staged(&mut self) {
        if let Some(staged) = self.staged.take() {
            let _ = staged.handle.join();
        }
    }

    /// Whether a staged model is waiting for [`Engine::swap_staged`].
    pub fn has_staged(&self) -> bool {
        self.staged.is_some()
    }

    /// Completed live model swaps this session.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// Staging generation: how many models have ever been staged.
    pub fn staged_generation(&self) -> u64 {
        self.generation
    }

    /// Attaches an online-training digest tap: from now on every drained
    /// digest is mirrored into it (see [`DigestTap`]).
    pub fn attach_tap(&mut self, tap: DigestTap) {
        self.tap = Some(tap);
    }

    /// The attached digest tap, if any.
    pub fn tap(&self) -> Option<&DigestTap> {
        self.tap.as_ref()
    }

    /// Mutable access to the attached tap — register fixture flows,
    /// train, or reset observations at a drift alarm.
    pub fn tap_mut(&mut self) -> Option<&mut DigestTap> {
        self.tap.as_mut()
    }

    /// Detaches and returns the tap.
    pub fn detach_tap(&mut self) -> Option<DigestTap> {
        self.tap.take()
    }

    /// Explicit operator release of a **pinned** lane: frees the slot if
    /// it currently holds a decided, pinned owner, returning `true` when
    /// a lane was actually released (counted in
    /// [`LifecycleStats::evictions_pinned`]). Out-of-range slots return
    /// `false` (they are never wrapped onto another slot's lane).
    pub fn release_pinned(&mut self, slot: usize) -> bool {
        if slot >= self.io.flow_slots {
            return false;
        }
        let owner_reg = self.io.owner_reg.index();
        let regs = self.pipeline.registers_mut();
        let cell = regs.read(owner_reg, slot);
        if owner_lane::decided(cell) && owner_lane::pinned(cell) {
            regs.write(owner_reg, slot, owner_lane::FREE);
            self.released_pinned += 1;
            true
        } else {
            false
        }
    }

    /// Per-slot contention telemetry: scans the compiled pressure
    /// register (suppressed packets per slot — live collisions,
    /// unsolicited refusals, pinned defenses) into totals, the K hottest
    /// slots and a histogram. Operators size `flow_slots` from this.
    pub fn slot_pressure(&self) -> SlotPressure {
        let regs = self.pipeline.registers();
        let pressure_reg = self.io.pressure_reg.index();
        let mut out = SlotPressure::default();
        let mut hot: Vec<(usize, u64)> = Vec::new();
        for slot in 0..self.io.flow_slots {
            let p = regs.read(pressure_reg, slot);
            out.total += p;
            out.histogram[SlotPressure::bucket(p)] += 1;
            if p > 0 {
                hot.push((slot, p));
            }
        }
        hot.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        hot.truncate(PRESSURE_TOP_K);
        out.hot_slots = hot;
        out
    }

    /// The session's flow-state lifecycle counters: data-plane lifecycle
    /// MAT hits + controller lane releases + a live scan of the ownership
    /// lanes. The counters reconcile exactly
    /// ([`LifecycleStats::reconciles`]).
    pub fn lifecycle(&self) -> LifecycleStats {
        let t = self.pipeline.program().table(self.io.lifecycle_table);
        let e = self.io.lifecycle_entries;
        let hits = |i: usize| t.entries()[i].hits;
        let (mut active, mut decided_pending, mut pinned_pending) = (0u64, 0u64, 0u64);
        let regs = self.pipeline.registers();
        let owner_reg = self.io.owner_reg.index();
        for i in 0..self.io.flow_slots {
            let cell = regs.read(owner_reg, i);
            if owner_lane::fp(cell) != 0 {
                if owner_lane::decided(cell) {
                    decided_pending += 1;
                    pinned_pending += u64::from(owner_lane::pinned(cell));
                } else {
                    active += 1;
                }
            }
        }
        let takeovers = hits(e.takeover_idle) + hits(e.takeover_decided) + hits(e.takeover_pinned);
        LifecycleStats {
            admitted: hits(e.admit_free) + takeovers,
            active_flows: active,
            decided_pending,
            pinned_pending,
            evictions_idle: hits(e.takeover_idle),
            evictions_decided: hits(e.takeover_decided) + self.released_decided,
            evictions_pinned: hits(e.takeover_pinned) + self.released_pinned,
            released_fin: hits(e.released_fin),
            takeovers,
            live_collisions: hits(e.live_collision),
            unsolicited: hits(e.unsolicited),
            pinned_defended: hits(e.pinned_defended),
            post_verdict_pkts: hits(e.post_verdict),
        }
    }

    /// Installs a rule into a table of the running pipeline (the
    /// controller-style runtime update). The pipeline invalidates and
    /// rebuilds its compiled execution plan — match indexes included —
    /// so the next ingested packet sees the rule.
    pub fn install_entry(
        &mut self,
        table: splidt_dataplane::table::TableId,
        key: splidt_dataplane::table::EntryKey,
        action: splidt_dataplane::Action,
    ) -> Result<(), SplidtError> {
        self.pipeline
            .install_entry(table, key, action)
            .map_err(|e| SplidtError::Compile(crate::compile::CompileError::Program(e.into())))
    }

    /// Scores the admitted flows against collected digests: per-flow
    /// verdicts, macro-F1, software agreement, meters.
    pub fn report(&mut self) -> RuntimeReport {
        self.drain_digests();
        let cat = catalog();
        let p = self.model.n_partitions();
        let mut outcomes = Vec::with_capacity(self.admitted.len());
        let mut truth = Vec::new();
        let mut preds = Vec::new();
        let mut agree = 0usize;
        for a in &self.admitted {
            let ds = self.collated.get(&(a.slot as u64));
            let first = ds.and_then(|v| v.iter().min_by_key(|(ts, _)| *ts).copied());
            let windows = extract_windows(&a.flow, p, cat);
            let software = self.model.predict(&windows).class;
            let outcome = FlowOutcome {
                label: a.flow.label,
                predicted: first.map(|(_, c)| c),
                software,
                digests: ds.map(|v| v.len()).unwrap_or(0),
                ttd_us: first.map(|(ts, _)| ts.saturating_sub(a.base_us + a.flow.packets[0].ts_us)),
            };
            if let Some(c) = outcome.predicted {
                truth.push(a.flow.label);
                preds.push(c);
                if c == software {
                    agree += 1;
                }
            }
            outcomes.push(outcome);
        }
        let f1 =
            if truth.is_empty() { 0.0 } else { macro_f1(&truth, &preds, self.model.n_classes) };
        let software_agreement =
            if outcomes.is_empty() { 1.0 } else { agree as f64 / outcomes.len() as f64 };
        let meters = self.pipeline.meters().clone();
        let recirc_per_flow = if self.admitted.is_empty() {
            0.0
        } else {
            meters.resubmissions as f64 / self.admitted.len() as f64
        };
        RuntimeReport {
            f1,
            software_agreement,
            flows: outcomes,
            meters,
            recirc_per_flow,
            collisions_skipped: self.collisions_skipped,
            lifecycle: self.lifecycle(),
            slot_pressure: self.slot_pressure(),
            ingress: None,
            swaps: self.swaps,
            staged_generation: self.generation,
        }
    }

    /// Convenience batch driver: admit, feed, score — the one-shot
    /// equivalent of the old `run_flows`, minus the per-call recompile.
    pub fn run(&mut self, flows: &[FlowTrace]) -> Result<RuntimeReport, SplidtError> {
        for f in flows {
            self.admit(f);
        }
        self.ingest_admitted()?;
        Ok(self.report())
    }

    /// Clears session state in place (registers — ownership lanes
    /// included — digests, meters, table stats and with them every
    /// lifecycle counter, admissions), keeping the (expensive)
    /// compilation. A previously-decided flow re-admits cleanly after a
    /// reset. Also discards any staged-but-unswapped model and wipes the
    /// attached tap (observations *and* registrations) — a reset engine
    /// must behave bit-for-bit like a fresh one.
    pub fn reset(&mut self) {
        // Quiesce the burst path first: an open wave executes to
        // completion (drain-then-flip), then the wipe below discards its
        // outcomes with the rest of the session — so reset never leaves
        // half-executed packets parked in the arena.
        let fields = self.io.fields;
        let mut discard = WaveStats::default();
        self.pipeline.wave_flush(&fields, &mut discard);
        self.carry_stats = WaveStats::default();
        self.pipeline.reset_state();
        self.admitted.clear();
        self.fed = 0;
        self.slot_owner.clear();
        self.collisions_skipped = 0;
        self.collated.clear();
        self.released_decided = 0;
        self.released_pinned = 0;
        self.discard_staged();
        if let Some(tap) = &mut self.tap {
            tap.reset();
        }
        self.swaps = 0;
        self.generation = 0;
    }
}

// ---------------------------------------------------------------- sharding

/// N independent pipeline shards addressed by canonical flow hash and
/// driven on OS threads — the first real throughput-scaling knob. Flows
/// never share registers across shards (each shard owns a full register
/// file), so per-flow verdicts are identical to a single-shard engine.
pub struct ShardedEngine {
    shards: Vec<Engine>,
    flow_slots: usize,
    collisions_skipped: usize,
    /// Global slot → owner filter, persistent across `run` calls (mirrors
    /// the single-shard engine's cumulative admission semantics).
    slot_owner: HashMap<usize, usize>,
    /// Shard of each admitted flow, in global admission order — persistent
    /// so repeated `run` calls merge cumulative shard reports correctly.
    placement: Vec<usize>,
    /// Persistent shard workers (one thread per shard), built lazily by
    /// the first [`ShardedEngine::ingest_batch`] and kept alive across
    /// batches — no per-batch thread spawn. Rebuilt if a batch carries a
    /// frame longer than the pool's ring slots; dropped by `reset`.
    pool: Option<WorkerPool>,
    /// Optional core-pinning hook applied to each worker thread at
    /// startup (takes effect when the pool is next (re)built).
    pin_hook: Option<PinHook>,
}

impl ShardedEngine {
    /// Shard count.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard a flow hashes to: canonical register slot modulo N, so
    /// assignment agrees with the data plane's `HashFlow` and is stable
    /// across runs.
    pub fn shard_of(&self, flow: &FlowTrace) -> usize {
        canonical_flow_index(flow, self.flow_slots) % self.shards.len()
    }

    /// Per-shard live meters.
    pub fn shard_meters(&self) -> Vec<&Meters> {
        self.shards.iter().map(|s| s.meters()).collect()
    }

    /// Register depth each shard was compiled with (the canonical flow
    /// hash domain — frame steering is `flow_index % flow_slots % n`).
    pub fn flow_slots(&self) -> usize {
        self.flow_slots
    }

    /// The per-shard engines, in shard order (read view).
    pub fn engines(&self) -> &[Engine] {
        &self.shards
    }

    /// Mutable access to the per-shard engines — the hook external
    /// drivers (the network ingress service) use to run one consumer per
    /// shard without funneling every frame through a central batch call.
    pub fn engines_mut(&mut self) -> &mut [Engine] {
        &mut self.shards
    }

    /// The shard a raw frame hashes to, read straight off the wire bytes
    /// (same canonical ordering and hash as the data plane's `HashFlow`),
    /// so batch dispatch agrees with [`ShardedEngine::shard_of`].
    pub fn shard_of_frame(&self, frame: &[u8]) -> Result<usize, SplidtError> {
        let t = peek_flow_tuple(frame)?;
        let (sip, dip, sp, dp) =
            splidt_dataplane::hash::canonical_order(t.src_ip, t.dst_ip, t.sport, t.dport);
        Ok(flow_index(sip, dip, sp, dp, t.proto, self.flow_slots) % self.shards.len())
    }

    /// Installs a core-pinning hook: invoked with the worker (shard)
    /// index on each worker thread at startup. Takes effect when the
    /// worker pool is next (re)built — call before the first
    /// [`ShardedEngine::ingest_batch`] (or after a `reset`, which drops
    /// the pool) to pin the whole fleet.
    pub fn set_pin_hook(&mut self, hook: PinHook) {
        self.pin_hook = Some(hook);
        // Force a rebuild so the hook applies to the next batch's workers.
        self.pool = None;
    }

    /// The persistent worker pool sized for this batch: built on first
    /// use, kept across batches, rebuilt only if the shard count changed
    /// (it cannot today) or a frame outgrows the ring slots.
    fn ensure_pool(&mut self, max_frame: usize) -> &mut WorkerPool {
        let rebuild = match &self.pool {
            Some(p) => p.len() != self.shards.len() || p.max_frame() < max_frame,
            None => true,
        };
        if rebuild {
            // Headroom so a slightly longer frame next batch doesn't force
            // another teardown; floor keeps tiny test frames from building
            // toy rings.
            let slot = max_frame.max(2048).next_power_of_two();
            self.pool = Some(WorkerPool::new(self.shards.len(), slot, self.pin_hook.as_ref()));
        }
        self.pool.as_mut().expect("pool just ensured")
    }

    /// Batch ingest across shards: frames are routed by canonical flow
    /// hash (agreeing with the single-shard engine flow-for-flow), each
    /// shard's sub-batch is streamed over an SPSC ring to that shard's
    /// **persistent worker thread** (spawned once, reused every batch),
    /// and the per-shard [`BatchReport`]s are merged in shard order.
    /// Digests are drained once per shard per batch — not once per
    /// packet — and each shard runs the burst-mode wave executor.
    ///
    /// Frames the steering peek rejects are counted into the merged
    /// report's `malformed` **at dispatch** and never enqueued — the
    /// shard-side parser therefore rejects nothing, which the merge
    /// asserts (reconciliation: dispatcher rejects + shard rejects must
    /// equal total rejects, and the latter term is structurally zero).
    ///
    /// Frames are **borrowed** (`F: AsRef<[u8]>`), so callers batch
    /// `&[u8]` slices, `Vec<u8>`s or `Bytes` alike without allocating an
    /// owned frame per packet just to build the batch.
    pub fn ingest_batch<F: AsRef<[u8]> + Sync>(
        &mut self,
        frames: &[(F, u64)],
    ) -> Result<BatchReport, SplidtError> {
        let n = self.shards.len();
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut merged = BatchReport::default();
        let mut max_frame = 0usize;
        for (i, (frame, _)) in frames.iter().enumerate() {
            match self.shard_of_frame(frame.as_ref()) {
                Ok(shard) => {
                    max_frame = max_frame.max(frame.as_ref().len());
                    buckets[shard].push(i);
                }
                // The steering peek walks the same headers as the shard
                // parser, so a reject here is exactly a parse reject:
                // count it at dispatch instead of burning a shard slot
                // (the old path routed these to shard 0 just to have its
                // parser re-reject them).
                Err(_) => merged.malformed += 1,
            }
        }
        self.ensure_pool(max_frame);
        // Borrow-split: lift the pool out of its Option for the batch so
        // the worker channels and the shard engines are borrowed from
        // disjoint places (it goes back before we return).
        let mut pool = self.pool.take().expect("ensure_pool populated it");
        // Open a batch on every worker, then feed the buckets. The rings
        // are deep enough that the fan-out loop rarely waits; workers
        // drain concurrently while we are still pushing.
        for (w, shard) in self.shards.iter_mut().enumerate() {
            pool.begin_batch(w, shard as *mut Engine);
        }
        for (w, bucket) in buckets.iter().enumerate() {
            for &i in bucket {
                pool.push(w, frames[i].0.as_ref(), frames[i].1);
            }
            pool.end_batch(w);
        }
        // Blocking on every report before returning is what makes the
        // raw-pointer hand-off sound (see `crate::workers`): no engine
        // borrow survives this method.
        for w in 0..n {
            let report = pool.collect(w);
            debug_assert_eq!(
                report.malformed, 0,
                "dispatcher pre-filters malformed frames; shard {w} re-rejected some"
            );
            merged.merge(report);
        }
        self.pool = Some(pool);
        Ok(merged)
    }

    /// Merged flow-state lifecycle counters across all shards.
    pub fn lifecycle(&self) -> LifecycleStats {
        let mut out = LifecycleStats::default();
        for s in &self.shards {
            out.merge(&s.lifecycle());
        }
        out
    }

    /// Merged per-slot pressure telemetry across all shards (slot ids in
    /// `hot_slots` are shard-local).
    pub fn slot_pressure(&self) -> SlotPressure {
        let mut out = SlotPressure::default();
        for s in &self.shards {
            out.merge(&s.slot_pressure());
        }
        out
    }

    /// Explicit operator release of a pinned lane on one shard (see
    /// [`Engine::release_pinned`]; slot ids reported by per-shard
    /// telemetry are shard-local, so the operator addresses the pair).
    pub fn release_pinned(&mut self, shard: usize, slot: usize) -> bool {
        self.shards.get_mut(shard).is_some_and(|s| s.release_pinned(slot))
    }

    /// Batch driver: globally schedule flows (identical collision
    /// filtering and stagger bases to a single-shard engine), partition
    /// them by flow hash, feed every shard on its own thread, then merge
    /// the per-shard reports back into one [`RuntimeReport`] whose
    /// per-flow outcomes are in global admission order.
    ///
    /// Cumulative like [`Engine::run`]: a second `run` without
    /// [`ShardedEngine::reset`] admits only new flows (repeats are counted
    /// as collisions) and reports over every flow admitted so far.
    pub fn run(&mut self, flows: &[FlowTrace]) -> Result<RuntimeReport, SplidtError> {
        let n = self.shards.len();
        let stagger = self.shards[0].stagger_us;
        // Global admission: collision filter + stagger base exactly as the
        // single-shard engine assigns them, so outcomes match flow-for-flow.
        for f in flows {
            let slot = canonical_flow_index(f, self.flow_slots);
            if self.slot_owner.contains_key(&slot) {
                self.collisions_skipped += 1;
                continue;
            }
            let order = self.placement.len();
            self.slot_owner.insert(slot, order);
            let base = 1_000 + order as u64 * stagger;
            let shard = slot % n;
            self.shards[shard].admit_at(f, base);
            self.placement.push(shard);
        }
        // Feed shards in parallel and collect their reports.
        let mut results: Vec<Option<Result<RuntimeReport, SplidtError>>> =
            (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for (idx, shard) in self.shards.iter_mut().enumerate() {
                handles.push(s.spawn(move || {
                    let fed = shard.ingest_admitted();
                    (idx, fed.map(|()| shard.report()))
                }));
            }
            for h in handles {
                let (idx, r) = h.join().expect("shard worker panicked");
                results[idx] = Some(r);
            }
        });
        let mut reports = Vec::with_capacity(n);
        for r in results {
            reports.push(r.expect("all shards joined")?);
        }

        // Merge: outcomes back into global admission order.
        let mut cursors = vec![0usize; n];
        let mut outcomes: Vec<FlowOutcome> = Vec::with_capacity(self.placement.len());
        for &shard in &self.placement {
            let k = cursors[shard];
            outcomes.push(reports[shard].flows[k].clone());
            cursors[shard] += 1;
        }
        let mut meters = Meters::default();
        for r in &reports {
            meters.merge(&r.meters);
        }
        let mut truth = Vec::new();
        let mut preds = Vec::new();
        let mut agree = 0usize;
        for o in &outcomes {
            if let Some(c) = o.predicted {
                truth.push(o.label);
                preds.push(c);
                if c == o.software {
                    agree += 1;
                }
            }
        }
        let n_classes = self.shards[0].model.n_classes;
        let f1 = if truth.is_empty() { 0.0 } else { macro_f1(&truth, &preds, n_classes) };
        let software_agreement =
            if outcomes.is_empty() { 1.0 } else { agree as f64 / outcomes.len() as f64 };
        let recirc_per_flow = if outcomes.is_empty() {
            0.0
        } else {
            meters.resubmissions as f64 / outcomes.len() as f64
        };
        Ok(RuntimeReport {
            f1,
            software_agreement,
            flows: outcomes,
            meters,
            recirc_per_flow,
            collisions_skipped: self.collisions_skipped,
            lifecycle: self.lifecycle(),
            slot_pressure: self.slot_pressure(),
            ingress: None,
            swaps: self.shards.iter().map(|s| s.swaps).sum(),
            staged_generation: self.shards.iter().map(|s| s.generation).max().unwrap_or(0),
        })
    }

    /// Resets every shard (keeps compiled programs). Also shuts down the
    /// persistent worker threads (drained and joined — no batch can be in
    /// flight under `&mut self`); the next `ingest_batch` rebuilds them.
    pub fn reset(&mut self) {
        self.pool = None;
        for s in &mut self.shards {
            s.reset();
        }
        self.collisions_skipped = 0;
        self.slot_owner.clear();
        self.placement.clear();
    }
}
