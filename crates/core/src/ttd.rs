//! Time-to-detection (TTD) simulation — Figure 10.
//!
//! TTD is the time from the start of tree traversal to the final verdict.
//! For all three systems the verdict lands near the end of the flow's
//! observation (SpliDT: the last window boundary; NetBeacon: the deepest
//! phase boundary; Leo: once enough of the flow has been seen), so the
//! ECDFs nearly coincide — the paper's point being that partitioned
//! inference does *not* slow detection.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use splidt_flow::dcn::Environment;

/// Which system's decision point to simulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TtdSystem {
    /// SpliDT with `p` partitions: verdict at the last window boundary
    /// (the end of window `p` = flow end), or earlier on early exit.
    Splidt {
        /// Partition count.
        partitions: usize,
        /// Probability a flow exits early at any given boundary
        /// (measured from a trained model; 0 for none).
        early_exit_prob: f64,
    },
    /// NetBeacon: verdict at the deepest phase boundary `2^m` packets, or
    /// flow end for shorter flows.
    NetBeacon {
        /// Number of phases.
        phases: usize,
    },
    /// Leo: one-shot verdict once the flow has been observed.
    Leo,
}

/// Samples `n` per-flow TTDs (milliseconds) under `env`.
pub fn sample_ttd_ms(system: TtdSystem, env: &Environment, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x77D);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let dur_s = env.sample_duration_s(&mut rng);
        let size = env.sample_size_pkts(&mut rng) as f64;
        let ttd_s = match system {
            TtdSystem::Splidt { partitions, early_exit_prob } => {
                // Verdict at boundary j with geometric early-exit chance,
                // else at the final boundary (= flow end).
                let mut frac = 1.0;
                for j in 1..partitions {
                    if rand::Rng::random::<f64>(&mut rng) < early_exit_prob {
                        frac = j as f64 / partitions as f64;
                        break;
                    }
                }
                dur_s * frac
            }
            TtdSystem::NetBeacon { phases } => {
                let deepest = (1usize << phases) as f64;
                // Fraction of the flow observed at the deepest phase.
                dur_s * (deepest / size).min(1.0)
            }
            TtdSystem::Leo => dur_s,
        };
        out.push(ttd_s * 1000.0);
    }
    out.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    out
}

/// Empirical CDF points `(value_ms, fraction ≤ value)` from sorted samples.
pub fn ecdf(sorted_ms: &[f64]) -> Vec<(f64, f64)> {
    let n = sorted_ms.len() as f64;
    sorted_ms.iter().enumerate().map(|(i, &v)| (v, (i + 1) as f64 / n)).collect()
}

/// The value at quantile `q` of sorted samples.
pub fn quantile(sorted_ms: &[f64], q: f64) -> f64 {
    assert!(!sorted_ms.is_empty());
    let idx = ((sorted_ms.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted_ms[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn systems_have_similar_medians() {
        let ws = Environment::webserver();
        let sp =
            sample_ttd_ms(TtdSystem::Splidt { partitions: 4, early_exit_prob: 0.05 }, &ws, 4000, 1);
        let nb = sample_ttd_ms(TtdSystem::NetBeacon { phases: 8 }, &ws, 4000, 2);
        let leo = sample_ttd_ms(TtdSystem::Leo, &ws, 4000, 3);
        let (m_sp, m_nb, m_leo) = (quantile(&sp, 0.5), quantile(&nb, 0.5), quantile(&leo, 0.5));
        // within a small factor of each other (the paper's Figure 10 shape)
        for (a, b) in [(m_sp, m_leo), (m_nb, m_leo)] {
            let ratio = a / b;
            assert!((0.2..=1.2).contains(&ratio), "median ratio {ratio}");
        }
    }

    #[test]
    fn hadoop_detects_faster_than_webserver() {
        let sys = TtdSystem::Splidt { partitions: 4, early_exit_prob: 0.0 };
        let ws = sample_ttd_ms(sys, &Environment::webserver(), 4000, 4);
        let hd = sample_ttd_ms(sys, &Environment::hadoop(), 4000, 5);
        assert!(quantile(&hd, 0.5) < quantile(&ws, 0.5));
    }

    #[test]
    fn early_exit_shortens_ttd() {
        let ws = Environment::webserver();
        let none =
            sample_ttd_ms(TtdSystem::Splidt { partitions: 4, early_exit_prob: 0.0 }, &ws, 4000, 6);
        let lots =
            sample_ttd_ms(TtdSystem::Splidt { partitions: 4, early_exit_prob: 0.5 }, &ws, 4000, 6);
        assert!(quantile(&lots, 0.5) < quantile(&none, 0.5));
    }

    #[test]
    fn ecdf_shape() {
        let xs = vec![1.0, 2.0, 3.0, 4.0];
        let e = ecdf(&xs);
        assert_eq!(e.first().unwrap().1, 0.25);
        assert_eq!(e.last().unwrap().1, 1.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
    }
}
