//! Public lowering entry point for backend emitters.
//!
//! A backend (today: `splidt_p4`, the Tofino-style P4-16 emitter) needs
//! three things the compiler produces separately: the [`Program`] itself,
//! the I/O handles ([`CompiledIo`]: flow slots, lifecycle policy, digest
//! layout), and the analytic resource model ([`ModelFootprint`] /
//! [`BankPhysical`]) the paper's feasibility claims rest on. [`lower`]
//! bundles them, and [`Lowering::expectation`] cross-checks the program
//! against the analytic model — stage count, per-stage SALU population,
//! per-flow register bits and the physical bank packing must all agree —
//! so an emitter can assert that what it prints matches what
//! `resources.rs` predicted. A disagreement is a compiler/model bug, not
//! an emitter bug, and surfaces here as a typed [`LowerError`] before any
//! backend runs.

use crate::compile::{CompiledIo, CompiledModel, RulesSummary};
use crate::model::PartitionedTree;
use crate::resources::{bank_physical, splidt_footprint, BankPhysical, ModelFootprint};
use splidt_dataplane::program::Program;
use splidt_dataplane::register::{bank_cell_bytes, BANK_LINE_BYTES};

/// Everything a backend emitter needs about one compiled model, plus the
/// analytic resource model to cross-check the emission against.
#[derive(Debug)]
pub struct Lowering<'a> {
    /// The compiled pipeline program (tables, registers, stages).
    pub program: &'a Program,
    /// Compiler I/O handles: flow slots, timeouts, policy, digest layout.
    pub io: &'a CompiledIo,
    /// Rule-generation summary (TCAM entries, key widths).
    pub summary: &'a RulesSummary,
    /// Analytic footprint of the source model (Table 3 metrics).
    pub footprint: ModelFootprint,
    /// Physical flow-bank layout derived from the footprint.
    pub bank: BankPhysical,
}

/// The resource counts a faithful emission must reproduce. Built by
/// [`Lowering::expectation`] after the program ↔ footprint cross-check,
/// consumed by backend recount checks (e.g. `splidt_p4`'s golden tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceExpectation {
    /// Pipeline stages (`Program::stages().len()` ≡ `ModelFootprint::stages`).
    pub stages: usize,
    /// Register arrays resident per stage — each occupies one SALU bank.
    pub salus_per_stage: Vec<usize>,
    /// Sum of register cell widths ≡ `ModelFootprint::per_flow_bits()`.
    pub per_flow_register_bits: u64,
    /// Slot-domain depth of every register array.
    pub flow_slots: usize,
    /// Physical bank packing ≡ `bank_physical(&footprint)`.
    pub bank: BankPhysical,
}

/// Disagreement between the compiled program and the analytic resource
/// model — a compiler/model bug caught before any backend emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// `Program::stages().len()` ≠ `ModelFootprint::stages`.
    StageCount {
        /// Stages the compiler laid out.
        program: usize,
        /// Stages the footprint model predicts.
        footprint: usize,
    },
    /// Summed register widths ≠ `ModelFootprint::per_flow_bits()`.
    RegisterBits {
        /// Bits the compiled registers occupy per flow.
        program: u64,
        /// Bits the footprint model predicts per flow.
        footprint: u64,
    },
    /// Register packing ≠ `bank_physical(&footprint)`.
    BankLayout {
        /// Packing derived from the compiled registers.
        program: BankPhysical,
        /// Packing the footprint model predicts.
        footprint: BankPhysical,
    },
    /// Register arrays disagree on slot depth (banking invariant).
    NonUniformDepth,
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::StageCount { program, footprint } => {
                write!(f, "stage count mismatch: program {program}, footprint {footprint}")
            }
            LowerError::RegisterBits { program, footprint } => {
                write!(
                    f,
                    "per-flow register bits mismatch: program {program}, footprint {footprint}"
                )
            }
            LowerError::BankLayout { program, footprint } => {
                write!(f, "bank layout mismatch: program {program:?}, footprint {footprint:?}")
            }
            LowerError::NonUniformDepth => write!(f, "register arrays disagree on slot depth"),
        }
    }
}

impl std::error::Error for LowerError {}

/// Bundles a compiled model with its analytic resource model for a
/// backend emitter.
///
/// ```
/// use splidt_core::config::SplidtConfig;
/// use splidt_core::{compile, lower, train_partitioned};
/// use splidt_flow::features::catalog;
/// use splidt_flow::{generate, select_flows, spec, stratified_split, windowed_dataset, DatasetId};
///
/// let flows = generate(DatasetId::D2, 120, 21);
/// let (tr, _) = stratified_split(&flows, 0.3, 5);
/// let wd = windowed_dataset(&select_flows(&flows, &tr), 3, spec(DatasetId::D2).n_classes as usize);
/// let cfg = SplidtConfig { partitions: vec![2, 2], k: 4, ..Default::default() };
/// let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
/// let compiled = compile(&model, 1 << 10).unwrap();
///
/// let lowering = lower::lower(&model, &compiled);
/// let exp = lowering.expectation().unwrap();
/// assert_eq!(exp.stages, lowering.program.stages().len());
/// assert_eq!(exp.flow_slots, 1 << 10);
/// ```
pub fn lower<'a>(model: &PartitionedTree, compiled: &'a CompiledModel) -> Lowering<'a> {
    let footprint = splidt_footprint(model);
    let bank = bank_physical(&footprint);
    Lowering {
        program: &compiled.program,
        io: &compiled.io,
        summary: &compiled.summary,
        footprint,
        bank,
    }
}

impl Lowering<'_> {
    /// Cross-checks the program against the analytic model and returns
    /// the counts a faithful emission must reproduce.
    pub fn expectation(&self) -> Result<ResourceExpectation, LowerError> {
        let regs = self.program.registers();
        let stages = self.program.stages().len();
        if stages != self.footprint.stages {
            return Err(LowerError::StageCount {
                program: stages,
                footprint: self.footprint.stages,
            });
        }
        let per_flow: u64 = regs.iter().map(|r| u64::from(r.width_bits)).sum();
        if per_flow != self.footprint.per_flow_bits() {
            return Err(LowerError::RegisterBits {
                program: per_flow,
                footprint: self.footprint.per_flow_bits(),
            });
        }
        if regs.iter().any(|r| r.len != self.io.flow_slots) {
            return Err(LowerError::NonUniformDepth);
        }
        // Re-pack the compiled registers the way the flow bank does and
        // compare against the footprint-derived physical layout.
        let cell_bytes: usize = regs.iter().map(|r| bank_cell_bytes(r.width_bits)).sum();
        let stride_bytes = cell_bytes.next_multiple_of(BANK_LINE_BYTES).max(BANK_LINE_BYTES);
        let packed = BankPhysical {
            cell_bytes_per_flow: cell_bytes,
            stride_bytes,
            lines_per_flow: stride_bytes / BANK_LINE_BYTES,
        };
        if packed != self.bank {
            return Err(LowerError::BankLayout { program: packed, footprint: self.bank });
        }
        Ok(ResourceExpectation {
            stages,
            salus_per_stage: self.program.stages().iter().map(|s| s.registers.len()).collect(),
            per_flow_register_bits: per_flow,
            flow_slots: self.io.flow_slots,
            bank: self.bank,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::config::SplidtConfig;
    use crate::train::train_partitioned;
    use splidt_flow::features::catalog;
    use splidt_flow::{
        generate, select_flows, spec, stratified_split, windowed_dataset, DatasetId,
    };

    fn small_model() -> PartitionedTree {
        let flows = generate(DatasetId::D2, 300, 21);
        let (tr, _) = stratified_split(&flows, 0.3, 5);
        let wd =
            windowed_dataset(&select_flows(&flows, &tr), 3, spec(DatasetId::D2).n_classes as usize);
        let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
        train_partitioned(&wd, &cfg, &catalog().hardware_eligible())
    }

    #[test]
    fn expectation_agrees_with_footprint() {
        let model = small_model();
        let compiled = compile(&model, 1 << 12).unwrap();
        let lowering = lower(&model, &compiled);
        let exp = lowering.expectation().expect("program must match footprint");
        assert_eq!(exp.stages, lowering.footprint.stages);
        assert_eq!(exp.per_flow_register_bits, lowering.footprint.per_flow_bits());
        assert_eq!(exp.flow_slots, 1 << 12);
        assert_eq!(exp.salus_per_stage.len(), exp.stages);
        assert_eq!(exp.salus_per_stage.iter().sum::<usize>(), lowering.program.registers().len());
        assert_eq!(exp.bank, lowering.bank);
    }
}
