//! Data-plane runtime: serialize flow traces into frames, interleave them
//! on a shared timeline, push them through the compiled pipeline, and
//! score the digests against ground truth.
//!
//! This is the reproduction's equivalent of the paper's testbed run
//! (MoonGen → Tofino1 → digest collection), and the place where the core
//! fidelity invariant is checked: *data-plane inference must equal the
//! software reference* ([`PartitionedTree::predict`]) flow-for-flow.

use crate::compile::{compile, CompileError, CompiledModel};
use crate::model::PartitionedTree;
use splidt_dataplane::hash::flow_index;
use splidt_dataplane::packet::PacketBuilder;
use splidt_dataplane::pipeline::{Meters, Pipeline};
use splidt_dt::metrics::macro_f1;
use splidt_flow::features::catalog;
use splidt_flow::{extract_windows, FlowTrace};
use std::collections::HashMap;

/// Per-flow result of a data-plane run.
#[derive(Debug, Clone)]
pub struct FlowOutcome {
    /// Ground truth.
    pub label: u16,
    /// First digest's class (None = no digest seen — a bug if it happens).
    pub predicted: Option<u16>,
    /// Software-reference prediction for the same flow.
    pub software: u16,
    /// Digests observed for this flow.
    pub digests: usize,
    /// Time-to-detection: first digest time − first packet time (µs).
    pub ttd_us: Option<u64>,
}

/// Aggregate report of a data-plane run.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Macro-F1 of data-plane verdicts.
    pub f1: f64,
    /// Fraction of flows where data-plane class == software class.
    pub software_agreement: f64,
    /// Per-flow outcomes.
    pub flows: Vec<FlowOutcome>,
    /// Pipeline meters (packets, passes, resubmissions, digests…).
    pub meters: Meters,
    /// Mean resubmissions per flow.
    pub recirc_per_flow: f64,
    /// Flows dropped due to register-slot collisions (hash collisions are
    /// real behaviour; colliding flows are excluded from scoring).
    pub collisions_skipped: usize,
}

/// The canonical register index of a flow (must match the pipeline's
/// `HashFlow` primitive: the 5-tuple is ordered before hashing).
pub fn canonical_flow_index(f: &FlowTrace, slots: usize) -> usize {
    let t = f.tuple;
    let ((sip, sp), (dip, dp)) = if (t.src_ip, t.src_port) > (t.dst_ip, t.dst_port) {
        ((t.dst_ip, t.dst_port), (t.src_ip, t.src_port))
    } else {
        ((t.src_ip, t.src_port), (t.dst_ip, t.dst_port))
    };
    flow_index(sip, dip, sp, dp, t.proto, slots)
}

/// Runs `flows` through a freshly compiled pipeline for `model`.
///
/// Flows are staggered `stagger_us` apart and their packets merged into one
/// timeline, so many flows are in flight concurrently and register-state
/// separation is genuinely exercised.
pub fn run_flows(
    model: &PartitionedTree,
    flows: &[FlowTrace],
    flow_slots: usize,
    stagger_us: u64,
) -> Result<RuntimeReport, CompileError> {
    let compiled: CompiledModel = compile(model, flow_slots)?;
    run_flows_compiled(model, compiled, flows, stagger_us)
}

/// Like [`run_flows`] but reusing an already-compiled model.
pub fn run_flows_compiled(
    model: &PartitionedTree,
    compiled: CompiledModel,
    flows: &[FlowTrace],
    stagger_us: u64,
) -> Result<RuntimeReport, CompileError> {
    let mut pipe = Pipeline::new(compiled.program);
    let fields = compiled.io.fields;
    let slots = compiled.io.flow_slots;

    // Drop flows whose canonical register slot collides with an earlier
    // flow: shared state would corrupt both (the paper sizes registers so
    // collisions are negligible; we surface them instead of hiding them).
    let mut slot_owner: HashMap<usize, usize> = HashMap::new();
    let mut kept: Vec<usize> = Vec::new();
    let mut collisions = 0usize;
    for (i, f) in flows.iter().enumerate() {
        let idx = canonical_flow_index(f, slots);
        if slot_owner.contains_key(&idx) {
            collisions += 1;
        } else {
            slot_owner.insert(idx, i);
            kept.push(i);
        }
    }

    // Build the merged timeline: (ts, flow, packet index).
    let mut events: Vec<(u64, usize, usize)> = Vec::new();
    for (order, &i) in kept.iter().enumerate() {
        let base = 1_000 + order as u64 * stagger_us;
        for (j, p) in flows[i].packets.iter().enumerate() {
            events.push((base + p.ts_us, i, j));
        }
    }
    events.sort_unstable();

    // Process packets.
    for &(ts, i, j) in &events {
        let f = &flows[i];
        let p = &f.packets[j];
        let wt = f.wire_tuple(j);
        let payload = p.frame_len.saturating_sub(58);
        let frame = PacketBuilder::tcp(wt.src_ip, wt.dst_ip, wt.src_port, wt.dst_port)
            .flags(p.tcp_flags)
            .payload(payload)
            .flow_size(f.size_pkts() as u16)
            .build();
        pipe.process_packet(&frame, ts, &fields).expect("well-formed frame");
    }

    // Collate digests by initiator IP (unique per flow in our traces).
    let mut digests_by_flow: HashMap<u32, Vec<(u64, u16)>> = HashMap::new();
    for d in pipe.take_digests() {
        let src = d.values[compiled.io.digest_src] as u32;
        let dst = d.values[1] as u32;
        // The initiator IP (10.0.0.0/8 pool) is unique per flow and always
        // the numerically smaller of the pair in our traces.
        let key = src.min(dst);
        let class = d.values[compiled.io.digest_class] as u16;
        digests_by_flow.entry(key).or_default().push((d.ts_us, class));
    }

    let cat = catalog();
    let p = model.n_partitions();
    let mut outcomes = Vec::with_capacity(kept.len());
    let mut truth = Vec::new();
    let mut preds = Vec::new();
    let mut agree = 0usize;
    for (order, &i) in kept.iter().enumerate() {
        let f = &flows[i];
        let base = 1_000 + order as u64 * stagger_us;
        let key = f.tuple.src_ip.min(f.tuple.dst_ip);
        let ds = digests_by_flow.get(&key);
        let first = ds.and_then(|v| v.iter().min_by_key(|(ts, _)| *ts).copied());
        let windows = extract_windows(f, p, cat);
        let software = model.predict(&windows).class;
        let outcome = FlowOutcome {
            label: f.label,
            predicted: first.map(|(_, c)| c),
            software,
            digests: ds.map(|v| v.len()).unwrap_or(0),
            ttd_us: first.map(|(ts, _)| ts.saturating_sub(base + f.packets[0].ts_us)),
        };
        if let Some(c) = outcome.predicted {
            truth.push(f.label);
            preds.push(c);
            if c == software {
                agree += 1;
            }
        }
        outcomes.push(outcome);
    }

    let f1 = if truth.is_empty() { 0.0 } else { macro_f1(&truth, &preds, model.n_classes) };
    let software_agreement =
        if outcomes.is_empty() { 1.0 } else { agree as f64 / outcomes.len() as f64 };
    let meters = pipe.meters().clone();
    let recirc_per_flow = if kept.is_empty() {
        0.0
    } else {
        meters.resubmissions as f64 / kept.len() as f64
    };
    Ok(RuntimeReport {
        f1,
        software_agreement,
        flows: outcomes,
        meters,
        recirc_per_flow,
        collisions_skipped: collisions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplidtConfig;
    use crate::train::train_partitioned;
    use splidt_flow::{generate, select_flows, spec, stratified_split, windowed_dataset, DatasetId};

    fn model_and_flows() -> (PartitionedTree, Vec<FlowTrace>) {
        let flows = generate(DatasetId::D2, 260, 33);
        let (tr, te) = stratified_split(&flows, 0.25, 6);
        let nc = spec(DatasetId::D2).n_classes as usize;
        let wd = windowed_dataset(&select_flows(&flows, &tr), 3, nc);
        let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
        let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
        (model, select_flows(&flows, &te))
    }

    #[test]
    fn dataplane_matches_software_reference() {
        let (model, test_flows) = model_and_flows();
        let report = run_flows(&model, &test_flows, 1 << 16, 5_000).unwrap();
        assert_eq!(report.collisions_skipped, 0, "choose more slots");
        // every flow classified exactly once, and exactly like software
        for (i, o) in report.flows.iter().enumerate() {
            assert_eq!(o.digests, 1, "flow {i} produced {} digests", o.digests);
            assert_eq!(
                o.predicted,
                Some(o.software),
                "flow {i}: dataplane {:?} vs software {}",
                o.predicted,
                o.software
            );
        }
        assert!((report.software_agreement - 1.0).abs() < 1e-9);
        assert!(report.f1 > 0.4, "f1 {}", report.f1);
    }

    #[test]
    fn recirculation_counts_match_windows() {
        let (model, test_flows) = model_and_flows();
        let report = run_flows(&model, &test_flows, 1 << 16, 5_000).unwrap();
        // each flow crosses ≤ p−1 window boundaries, each costing one
        // resubmission (early exits can add one terminal resubmission)
        let p = model.n_partitions() as f64;
        assert!(report.recirc_per_flow <= p, "recirc/flow {}", report.recirc_per_flow);
        assert!(report.meters.resubmissions > 0);
        // TTD recorded and positive
        assert!(report.flows.iter().all(|o| o.ttd_us.is_some()));
    }
}
