//! Batch runtime wrappers over the streaming [`engine`](crate::engine):
//! serialize flow traces into frames, interleave them on a shared
//! timeline, push them through the compiled pipeline, and score the
//! digests against ground truth.
//!
//! This is the reproduction's equivalent of the paper's testbed run
//! (MoonGen → Tofino1 → digest collection), and the place where the core
//! fidelity invariant is checked: *data-plane inference must equal the
//! software reference* ([`PartitionedTree::predict`]) flow-for-flow.
//!
//! [`run_flows`] compiles per call; hot paths should hold an
//! [`Engine`] and reuse it (`compile once, run
//! many` — see `docs/engine.md`). Feeding runs on the engine's batch path
//! (`ingest_admitted` → `Pipeline::process_frame`), which executes the
//! compiled [`ExecPlan`](splidt_dataplane::plan::ExecPlan) with zero heap
//! allocations per steady-state packet.

use crate::compile::CompiledModel;
use crate::engine::{Engine, EngineBuilder};
use crate::error::SplidtError;
use crate::model::PartitionedTree;
use splidt_dataplane::hash::{canonical_order, flow_index, owner_fingerprint};
use splidt_dataplane::pipeline::Meters;
use splidt_flow::FlowTrace;

/// Per-flow result of a data-plane run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowOutcome {
    /// Ground truth.
    pub label: u16,
    /// First digest's class (None = no digest seen — a bug if it happens).
    pub predicted: Option<u16>,
    /// Software-reference prediction for the same flow.
    pub software: u16,
    /// Digests observed for this flow.
    pub digests: usize,
    /// Time-to-detection: first digest time − first packet time (µs).
    pub ttd_us: Option<u64>,
}

/// Flow-state lifecycle counters: how register slots were claimed,
/// recycled and defended over a session. Sourced from the compiled
/// lifecycle MAT's per-entry hit counters plus the engine's
/// controller-side lane releases, so they reflect what the *data plane*
/// actually did, packet by packet.
///
/// The counters reconcile exactly:
/// `admitted == active_flows + decided_pending + evictions_idle +
/// evictions_decided + evictions_pinned + released_fin`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleStats {
    /// Flows granted a slot (free claims + takeovers) — flows are learned
    /// from the wire, so this counts distinct admissions, not packets.
    pub admitted: u64,
    /// Slots currently owned by a live, undecided flow (lane scan).
    pub active_flows: u64,
    /// Slots whose owner has a verdict but has not been released yet
    /// (drained digests release these; lane scan).
    pub decided_pending: u64,
    /// The pinned subset of `decided_pending`: decided lanes whose class
    /// the policy pins (lane scan; informational, not a separate
    /// reconciliation term).
    pub pinned_pending: u64,
    /// Owners displaced after idling past the compiled timeout.
    pub evictions_idle: u64,
    /// Decided owners whose slot was recycled: in-band takeovers plus
    /// controller releases on digest drain.
    pub evictions_decided: u64,
    /// Pinned lanes retired: takeovers past the pinned timeout plus
    /// explicit operator releases (`Engine::release_pinned`).
    pub evictions_pinned: u64,
    /// Lanes released in-band by a FIN/RST verdict pass — the TCP-aware
    /// policy's fast path: no digest drain, no decided parking.
    pub released_fin: u64,
    /// In-band slot takeovers (idle + decided + pinned) — the subset of
    /// evictions performed by the pipeline itself, without controller
    /// involvement.
    pub takeovers: u64,
    /// Packets of flows that collided with a *live* owner: suppressed and
    /// counted, never merged into the owner's state.
    pub live_collisions: u64,
    /// Non-SYN packets of unknown flows the TCP-aware policy refused to
    /// admit (scan/backscatter traffic); suppressed like collisions.
    pub unsolicited: u64,
    /// Packets suppressed by a pinned lane defending its slot inside the
    /// pinned timeout.
    pub pinned_defended: u64,
    /// Trailing packets of already-decided owners (inert).
    pub post_verdict_pkts: u64,
}

impl LifecycleStats {
    /// Accumulates another shard's counters.
    pub fn merge(&mut self, other: &LifecycleStats) {
        self.admitted += other.admitted;
        self.active_flows += other.active_flows;
        self.decided_pending += other.decided_pending;
        self.pinned_pending += other.pinned_pending;
        self.evictions_idle += other.evictions_idle;
        self.evictions_decided += other.evictions_decided;
        self.evictions_pinned += other.evictions_pinned;
        self.released_fin += other.released_fin;
        self.takeovers += other.takeovers;
        self.live_collisions += other.live_collisions;
        self.unsolicited += other.unsolicited;
        self.pinned_defended += other.pinned_defended;
        self.post_verdict_pkts += other.post_verdict_pkts;
    }

    /// Whether the counters reconcile: every admitted flow is either
    /// still active, decided-but-unreleased, or retired through exactly
    /// one of the eviction/release paths.
    pub fn reconciles(&self) -> bool {
        self.admitted
            == self.active_flows
                + self.decided_pending
                + self.evictions_idle
                + self.evictions_decided
                + self.evictions_pinned
                + self.released_fin
    }
}

// ---------------------------------------------------------------- pressure

/// Hottest slots reported by [`SlotPressure`].
pub const PRESSURE_TOP_K: usize = 8;

/// Histogram buckets: bucket 0 counts pressure-free slots, bucket `i`
/// (1 ≤ i ≤ 15) counts slots with pressure in `[2^(i−1), 2^i)`, and the
/// last bucket collects everything ≥ 2^15.
pub const PRESSURE_HIST_BUCKETS: usize = 17;

/// Per-slot contention telemetry read off the compiled pressure register:
/// how many packets each slot suppressed (live collisions + unsolicited
/// refusals + pinned defenses). Operators size `flow_slots` from this —
/// a fat histogram tail or a hot top-K means the register file is too
/// small for the offered flow churn.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SlotPressure {
    /// Total suppressed packets across all slots.
    pub total: u64,
    /// The K hottest slots as `(slot, suppressed_packets)`, descending.
    pub hot_slots: Vec<(usize, u64)>,
    /// Pressure histogram over slots (see [`PRESSURE_HIST_BUCKETS`]).
    pub histogram: [u64; PRESSURE_HIST_BUCKETS],
}

impl SlotPressure {
    /// The histogram bucket a pressure count falls into.
    pub fn bucket(pressure: u64) -> usize {
        if pressure == 0 {
            0
        } else {
            (64 - pressure.leading_zeros() as usize).min(PRESSURE_HIST_BUCKETS - 1)
        }
    }

    /// Accumulates another shard's telemetry (slot ids are per-shard).
    pub fn merge(&mut self, other: &SlotPressure) {
        self.total += other.total;
        for (b, v) in self.histogram.iter_mut().zip(other.histogram.iter()) {
            *b += v;
        }
        self.hot_slots.extend(other.hot_slots.iter().copied());
        self.hot_slots.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        self.hot_slots.truncate(PRESSURE_TOP_K);
    }

    /// The hottest slot's suppressed-packet count (0 when pressure-free).
    pub fn peak(&self) -> u64 {
        self.hot_slots.first().map(|&(_, c)| c).unwrap_or(0)
    }
}

// ----------------------------------------------------------------- ingress

/// One shard's slice of the ingress accounting (see [`IngressStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngressShardStats {
    /// Frames steered into this shard's ring.
    pub steered: u64,
    /// Frames dropped because the shard's ring was full (backpressure).
    pub dropped_ring_full: u64,
    /// Frames the consumer drained from the ring into the engine.
    pub consumed: u64,
}

/// Front-end accounting for a network ingress session: every frame the
/// receiver pulled off the wire is steered into exactly one shard ring or
/// dropped for exactly one reason, so the counters reconcile *exactly* —
/// `received == steered + dropped_ring_full + dropped_malformed` — with no
/// best-effort slack anywhere.
///
/// Produced by the `splidt_net` ingress service and carried on
/// [`RuntimeReport::ingress`] (`None` for in-process runs with no network
/// front-end).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngressStats {
    /// Frames received off the source (socket datagrams / pcap records).
    pub received: u64,
    /// Frames that passed the steering peek and entered a shard ring.
    pub steered: u64,
    /// Frames dropped at the rings under backpressure (sum over shards).
    pub dropped_ring_full: u64,
    /// Frames the steering peek rejected (truncated/garbage headers).
    pub dropped_malformed: u64,
    /// Per-shard breakdown, in shard order.
    pub shards: Vec<IngressShardStats>,
}

impl IngressStats {
    /// Whether the counters reconcile exactly: every received frame is
    /// accounted once, the per-shard slices sum to the totals, and every
    /// steered frame was drained by a consumer.
    pub fn reconciles(&self) -> bool {
        let steered: u64 = self.shards.iter().map(|s| s.steered).sum();
        let ring_full: u64 = self.shards.iter().map(|s| s.dropped_ring_full).sum();
        let consumed: u64 = self.shards.iter().map(|s| s.consumed).sum();
        self.received == self.steered + self.dropped_ring_full + self.dropped_malformed
            && steered == self.steered
            && ring_full == self.dropped_ring_full
            && consumed == self.steered
    }
}

/// Aggregate report of a data-plane run.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Macro-F1 of data-plane verdicts.
    pub f1: f64,
    /// Fraction of flows where data-plane class == software class.
    pub software_agreement: f64,
    /// Per-flow outcomes.
    pub flows: Vec<FlowOutcome>,
    /// Pipeline meters (packets, passes, resubmissions, digests…).
    pub meters: Meters,
    /// Mean resubmissions per flow.
    pub recirc_per_flow: f64,
    /// Flows dropped due to register-slot collisions (hash collisions are
    /// real behaviour; colliding flows are excluded from scoring).
    pub collisions_skipped: usize,
    /// Flow-state lifecycle counters (admissions, evictions, takeovers).
    pub lifecycle: LifecycleStats,
    /// Per-slot contention telemetry (top-K hottest slots + histogram).
    pub slot_pressure: SlotPressure,
    /// Network-ingress accounting when the run was fed off a wire source
    /// (`None` for in-process runs).
    pub ingress: Option<IngressStats>,
    /// Completed live model swaps during the session (see
    /// `Engine::swap_staged`).
    pub swaps: u64,
    /// Staging generation of the engine: total models ever staged for a
    /// live swap (whether or not they were swapped in).
    pub staged_generation: u64,
}

/// The canonical register index of a flow (must match the pipeline's
/// `HashFlow` primitive: the 5-tuple is ordered before hashing).
pub fn canonical_flow_index(f: &FlowTrace, slots: usize) -> usize {
    let t = f.tuple;
    let (sip, dip, sp, dp) = canonical_order(t.src_ip, t.dst_ip, t.src_port, t.dst_port);
    flow_index(sip, dip, sp, dp, t.proto, slots)
}

/// The ownership-lane fingerprint of a flow (must match the pipeline's
/// salted `HashFlow` + `Max(·, 1)` sequence bit-for-bit).
pub fn canonical_flow_fp(f: &FlowTrace) -> u64 {
    let t = f.tuple;
    let (sip, dip, sp, dp) = canonical_order(t.src_ip, t.dst_ip, t.src_port, t.dst_port);
    owner_fingerprint(sip, dip, sp, dp, t.proto)
}

/// Runs `flows` through a freshly compiled pipeline for `model`.
///
/// Flows are staggered `stagger_us` apart and their packets merged into one
/// timeline, so many flows are in flight concurrently and register-state
/// separation is genuinely exercised.
///
/// Thin wrapper over [`EngineBuilder`]: it compiles on every call. Hold an
/// [`Engine`] (or a [`ShardedEngine`](crate::engine::ShardedEngine)) to
/// compile once and stream instead.
pub fn run_flows(
    model: &PartitionedTree,
    flows: &[FlowTrace],
    flow_slots: usize,
    stagger_us: u64,
) -> Result<RuntimeReport, SplidtError> {
    EngineBuilder::new(model).flow_slots(flow_slots).stagger_us(stagger_us).build()?.run(flows)
}

/// Like [`run_flows`] but reusing an already-compiled model.
pub fn run_flows_compiled(
    model: &PartitionedTree,
    compiled: CompiledModel,
    flows: &[FlowTrace],
    stagger_us: u64,
) -> Result<RuntimeReport, SplidtError> {
    Engine::from_compiled(model.clone(), compiled, stagger_us).run(flows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplidtConfig;
    use crate::train::train_partitioned;
    use splidt_flow::features::catalog;
    use splidt_flow::{
        generate, select_flows, spec, stratified_split, windowed_dataset, DatasetId, Dir,
        FiveTuple, TracePacket,
    };

    fn model_and_flows() -> (PartitionedTree, Vec<FlowTrace>) {
        let flows = generate(DatasetId::D2, 260, 33);
        let (tr, te) = stratified_split(&flows, 0.25, 6);
        let nc = spec(DatasetId::D2).n_classes as usize;
        let wd = windowed_dataset(&select_flows(&flows, &tr), 3, nc);
        let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
        let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
        (model, select_flows(&flows, &te))
    }

    #[test]
    fn dataplane_matches_software_reference() {
        let (model, test_flows) = model_and_flows();
        let report = run_flows(&model, &test_flows, 1 << 16, 5_000).unwrap();
        assert_eq!(report.collisions_skipped, 0, "choose more slots");
        // every flow classified exactly once, and exactly like software
        for (i, o) in report.flows.iter().enumerate() {
            assert_eq!(o.digests, 1, "flow {i} produced {} digests", o.digests);
            assert_eq!(
                o.predicted,
                Some(o.software),
                "flow {i}: dataplane {:?} vs software {}",
                o.predicted,
                o.software
            );
        }
        assert!((report.software_agreement - 1.0).abs() < 1e-9);
        assert!(report.f1 > 0.4, "f1 {}", report.f1);
    }

    #[test]
    fn recirculation_counts_match_windows() {
        let (model, test_flows) = model_and_flows();
        let report = run_flows(&model, &test_flows, 1 << 16, 5_000).unwrap();
        // each flow crosses ≤ p−1 window boundaries, each costing one
        // resubmission (early exits can add one terminal resubmission)
        let p = model.n_partitions() as f64;
        assert!(report.recirc_per_flow <= p, "recirc/flow {}", report.recirc_per_flow);
        assert!(report.meters.resubmissions > 0);
        // TTD recorded and positive
        assert!(report.flows.iter().all(|o| o.ttd_us.is_some()));
    }

    /// Builds a synthetic TCP flow with a chosen tuple: enough packets in
    /// both directions to cross every window boundary.
    fn flow_with_tuple(src_ip: u32, src_port: u16, dst_ip: u32, label: u16) -> FlowTrace {
        let packets = (0..12u64)
            .map(|i| TracePacket {
                ts_us: i * 120,
                frame_len: 80 + (i as u16 % 5) * 100,
                hdr_len: 58,
                tcp_flags: if i == 0 { 0x02 } else { 0x10 },
                dir: if i % 3 == 2 { Dir::Bwd } else { Dir::Fwd },
            })
            .collect();
        FlowTrace {
            tuple: FiveTuple { src_ip, dst_ip, src_port, dst_port: 443, proto: 6 },
            packets,
            label,
        }
    }

    /// Regression: digests used to be collated by `src.min(dst)` IP, which
    /// silently merged any two flows sharing an initiator IP. Collation is
    /// now keyed by canonical register slot, so flows that differ only in
    /// ports (very common: one client, many connections) stay separate.
    #[test]
    fn shared_initiator_ip_flows_stay_separate() {
        let (model, _) = model_and_flows();
        // Same initiator IP (and even the same responder): only the
        // ephemeral source port differs.
        let a = flow_with_tuple(0x0a00_0001, 40_000, 0x0b00_0001, 0);
        let b = flow_with_tuple(0x0a00_0001, 40_001, 0x0b00_0001, 1);
        let report = run_flows(&model, &[a, b], 1 << 16, 3_000).unwrap();
        assert_eq!(report.collisions_skipped, 0);
        assert_eq!(report.flows.len(), 2);
        for (i, o) in report.flows.iter().enumerate() {
            assert_eq!(o.digests, 1, "flow {i} saw {} digests (mis-collated?)", o.digests);
            assert_eq!(o.predicted, Some(o.software), "flow {i} mis-attributed");
        }
    }
}
