//! Baseline in-network classifiers the paper compares against:
//! NetBeacon \[85\], Leo \[43\], a stateless per-packet model (IIsy/Planter
//! class) and the resource-unlimited "ideal" upper bound of Figure 2.
//!
//! All baselines share the evaluation contract: train on flows, then
//! produce one label per test flow, plus a [`ModelFootprint`] for the
//! resource/feasibility comparisons.

use crate::resources::{slot_bits_for, ModelFootprint};
use splidt_dt::{
    metrics::macro_f1, top_k_features, train_classifier, train_classifier_on, Dataset, TrainParams,
    Tree,
};
use splidt_flow::features::{catalog, DepRegister};
use splidt_flow::{
    extract_flow_level, extract_prefix, extract_windows, flow_level_dataset, packet_level_dataset,
    prefix_dataset, quantize_dataset, FlowTrace,
};
use splidt_ranging::generate_rules;
use std::collections::BTreeSet;

/// Quantizes a feature row to `bits` (identity at the default 24).
fn quantize_row(row: &mut [f32], bits: u8) {
    if bits < splidt_flow::FEATURE_BITS {
        for v in row.iter_mut() {
            *v = splidt_flow::features::quantize(*v, bits);
        }
    }
}

fn maybe_quantize(ds: Dataset, bits: u8) -> Dataset {
    if bits < splidt_flow::FEATURE_BITS {
        quantize_dataset(&ds, bits)
    } else {
        ds
    }
}

fn dep_registers_of(features: &BTreeSet<usize>) -> usize {
    let cat = catalog();
    let mut deps: BTreeSet<DepRegister> = BTreeSet::new();
    for &f in features {
        if let Some(p) = cat.slot_program(f) {
            deps.extend(p.deps());
        }
    }
    deps.len()
}

// ---------------------------------------------------------------- NetBeacon

/// NetBeacon \[85\]: one global top-k stateful feature set, phase trees at
/// exponentially growing packet counts (2, 4, 8, …), state retained across
/// phases. The verdict is the deepest applicable phase's prediction.
#[derive(Debug, Clone)]
pub struct NetBeacon {
    /// Global top-k feature columns.
    pub top_k: Vec<usize>,
    /// Phase packet counts (2^1 … 2^m).
    pub phase_pkts: Vec<usize>,
    /// One tree per phase.
    pub phase_trees: Vec<Tree>,
    /// Class count.
    pub n_classes: usize,
    /// Feature precision (bits).
    pub feature_bits: u8,
}

/// NetBeacon hyper-parameters.
#[derive(Debug, Clone)]
pub struct NetBeaconParams {
    /// Global stateful feature budget (paper: k ≤ 6).
    pub k: usize,
    /// Tree depth per phase.
    pub depth: usize,
    /// Number of phases (packet counts 2^1..2^n).
    pub n_phases: usize,
    /// Feature precision in bits.
    pub feature_bits: u8,
}

impl Default for NetBeaconParams {
    fn default() -> Self {
        Self { k: 4, depth: 8, n_phases: 5, feature_bits: splidt_flow::FEATURE_BITS }
    }
}

impl NetBeacon {
    /// Trains phase trees on prefix datasets.
    pub fn train(flows: &[FlowTrace], n_classes: usize, params: &NetBeaconParams) -> Self {
        let eligible = catalog().hardware_eligible();
        let flow_ds = maybe_quantize(flow_level_dataset(flows, n_classes), params.feature_bits);
        let top_k = top_k_features(&flow_ds, params.k, 10, Some(&eligible));
        let phase_pkts: Vec<usize> = (1..=params.n_phases).map(|j| 1usize << j).collect();
        let phase_trees = phase_pkts
            .iter()
            .map(|&pkts| {
                let ds =
                    maybe_quantize(prefix_dataset(flows, pkts, n_classes), params.feature_bits);
                train_classifier_on(
                    &ds.view(),
                    &TrainParams {
                        max_depth: params.depth,
                        allowed_features: Some(top_k.clone()),
                        max_thresholds_per_feature: 32,
                        ..TrainParams::default()
                    },
                )
            })
            .collect();
        Self { top_k, phase_pkts, phase_trees, n_classes, feature_bits: params.feature_bits }
    }

    /// Classifies one flow: the deepest phase whose packet count the flow
    /// reaches decides.
    pub fn predict(&self, flow: &FlowTrace) -> u16 {
        let size = flow.size_pkts();
        let mut phase = 0usize;
        for (i, &pkts) in self.phase_pkts.iter().enumerate() {
            if size >= pkts {
                phase = i;
            }
        }
        let prefix = self.phase_pkts[phase].min(size);
        let mut row = extract_prefix(flow, prefix, catalog());
        quantize_row(&mut row, self.feature_bits);
        self.phase_trees[phase].predict(&row)
    }

    /// Macro-F1 over test flows.
    pub fn evaluate(&self, flows: &[FlowTrace]) -> f64 {
        let truth: Vec<u16> = flows.iter().map(|f| f.label).collect();
        let preds: Vec<u16> = flows.iter().map(|f| self.predict(f)).collect();
        macro_f1(&truth, &preds, self.n_classes)
    }

    /// Resource footprint.
    pub fn footprint(&self) -> ModelFootprint {
        let feats: BTreeSet<usize> = self.top_k.iter().copied().collect();
        let (mut entries, mut key_bits) = (0usize, 0usize);
        for t in &self.phase_trees {
            let r = generate_rules(t, self.feature_bits);
            entries += r.tcam_entries();
            key_bits = key_bits.max(r.mark_bits() + 8);
        }
        ModelFootprint {
            slots: self.top_k.len(),
            slot_bits: slot_bits_for(self.feature_bits),
            dep_registers: dep_registers_of(&feats),
            // phase id (8) + packet counter (24).
            reserved_bits: 32,
            // baselines assume a statically pre-admitted flow set
            lifecycle_bits: 0,
            tcam_entries: entries,
            max_key_bits: key_bits,
            stages: 6 + self.top_k.len().div_ceil(8),
        }
    }

    /// Deepest phase tree depth (Table 3's "Depth" for NB).
    pub fn depth(&self) -> usize {
        self.phase_trees.iter().map(|t| t.depth()).max().unwrap_or(0)
    }
}

// ---------------------------------------------------------------------- Leo

/// Leo \[43\]: a single one-shot tree over top-k flow-level features with a
/// depth-optimized MAT layout (fixed power-of-two table geometry).
#[derive(Debug, Clone)]
pub struct Leo {
    /// Global top-k features.
    pub top_k: Vec<usize>,
    /// The tree.
    pub tree: Tree,
    /// Class count.
    pub n_classes: usize,
    /// Feature precision.
    pub feature_bits: u8,
}

/// Leo hyper-parameters.
#[derive(Debug, Clone)]
pub struct LeoParams {
    /// Global feature budget.
    pub k: usize,
    /// Tree depth.
    pub depth: usize,
    /// Feature precision in bits.
    pub feature_bits: u8,
}

impl Default for LeoParams {
    fn default() -> Self {
        Self { k: 4, depth: 10, feature_bits: splidt_flow::FEATURE_BITS }
    }
}

impl Leo {
    /// Trains the one-shot tree.
    pub fn train(flows: &[FlowTrace], n_classes: usize, params: &LeoParams) -> Self {
        let eligible = catalog().hardware_eligible();
        let ds = maybe_quantize(flow_level_dataset(flows, n_classes), params.feature_bits);
        let top_k = top_k_features(&ds, params.k, 10, Some(&eligible));
        let tree = train_classifier(
            &ds,
            &TrainParams {
                max_depth: params.depth,
                allowed_features: Some(top_k.clone()),
                max_thresholds_per_feature: 32,
                ..TrainParams::default()
            },
        );
        Self { top_k, tree, n_classes, feature_bits: params.feature_bits }
    }

    /// Classifies one flow from flow-level features.
    pub fn predict(&self, flow: &FlowTrace) -> u16 {
        let mut row = extract_flow_level(flow, catalog());
        quantize_row(&mut row, self.feature_bits);
        self.tree.predict(&row)
    }

    /// Macro-F1 over test flows.
    pub fn evaluate(&self, flows: &[FlowTrace]) -> f64 {
        let truth: Vec<u16> = flows.iter().map(|f| f.label).collect();
        let preds: Vec<u16> = flows.iter().map(|f| self.predict(f)).collect();
        macro_f1(&truth, &preds, self.n_classes)
    }

    /// Leo's fixed MAT geometry: table capacity grows in power-of-two
    /// steps with depth (visible in the paper's Table 3 Leo column:
    /// 2048 / 8192 / 16384).
    pub fn tcam_entries(&self) -> usize {
        let d = self.tree.depth();
        2048usize << (d.saturating_sub(5) / 2).min(4)
    }

    /// Resource footprint.
    pub fn footprint(&self) -> ModelFootprint {
        let feats: BTreeSet<usize> = self.top_k.iter().copied().collect();
        let rules = generate_rules(&self.tree, self.feature_bits);
        ModelFootprint {
            slots: self.top_k.len(),
            slot_bits: slot_bits_for(self.feature_bits),
            dep_registers: dep_registers_of(&feats),
            reserved_bits: 24,
            lifecycle_bits: 0,
            tcam_entries: self.tcam_entries(),
            max_key_bits: rules.mark_bits().max(8),
            stages: 5 + self.top_k.len().div_ceil(8),
        }
    }
}

// --------------------------------------------------------------- per-packet

/// Stateless per-packet classifier (IIsy \[79\] / Planter \[84\] class): one
/// tree over per-packet header fields; flow label = majority vote over the
/// flow's packets.
#[derive(Debug, Clone)]
pub struct PerPacket {
    /// The tree over stateless features.
    pub tree: Tree,
    /// Class count.
    pub n_classes: usize,
}

impl PerPacket {
    /// Trains on up to `max_pkts_per_flow` packets per training flow.
    pub fn train(flows: &[FlowTrace], n_classes: usize, depth: usize) -> Self {
        let ds = packet_level_dataset(flows, n_classes, 16);
        let tree = train_classifier(
            &ds,
            &TrainParams {
                max_depth: depth,
                allowed_features: Some(catalog().stateless()),
                ..TrainParams::default()
            },
        );
        Self { tree, n_classes }
    }

    /// Majority vote over the flow's packets.
    pub fn predict(&self, flow: &FlowTrace) -> u16 {
        let cat = catalog();
        let mut votes = vec![0usize; self.n_classes];
        for i in 0..flow.size_pkts().min(32) {
            let row = splidt_flow::extract_packet(flow, i, cat);
            votes[self.tree.predict(&row) as usize] += 1;
        }
        votes
            .iter()
            .enumerate()
            .max_by_key(|&(c, &v)| (v, usize::MAX - c))
            .map(|(c, _)| c as u16)
            .unwrap_or(0)
    }

    /// Macro-F1 over test flows.
    pub fn evaluate(&self, flows: &[FlowTrace]) -> f64 {
        let truth: Vec<u16> = flows.iter().map(|f| f.label).collect();
        let preds: Vec<u16> = flows.iter().map(|f| self.predict(f)).collect();
        macro_f1(&truth, &preds, self.n_classes)
    }
}

// --------------------------------------------------------------------- ideal

/// The "ideal" upper bound of Figure 2: unlimited resources — buffer the
/// whole flow, compute *every* feature (including software-only statistics)
/// over the full flow *and* per-window, with unrestricted tree depth.
#[derive(Debug, Clone)]
pub struct Ideal {
    tree: Tree,
    windows: usize,
    n_classes: usize,
}

impl Ideal {
    /// Number of classes the model separates.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Trains the unrestricted model on flow-level ⧺ per-window features.
    pub fn train(flows: &[FlowTrace], n_classes: usize, depth: usize) -> Self {
        let windows = 4usize;
        let rows: Vec<Vec<f32>> = flows.iter().map(|f| Self::features(f, windows)).collect();
        let labels: Vec<u16> = flows.iter().map(|f| f.label).collect();
        let mut ds = Dataset::from_rows(&rows, &labels, None).expect("consistent");
        ds.set_n_classes(n_classes);
        let tree =
            train_classifier(&ds, &TrainParams { max_depth: depth, ..TrainParams::default() });
        Self { tree, windows, n_classes }
    }

    fn features(flow: &FlowTrace, windows: usize) -> Vec<f32> {
        let cat = catalog();
        let mut row = extract_flow_level(flow, cat);
        for w in extract_windows(flow, windows, cat) {
            row.extend(w);
        }
        let want = cat.len() * (windows + 1);
        row.resize(want, 0.0);
        row
    }

    /// Classifies one flow.
    pub fn predict(&self, flow: &FlowTrace) -> u16 {
        self.tree.predict(&Self::features(flow, self.windows))
    }

    /// Macro-F1 over test flows.
    pub fn evaluate(&self, flows: &[FlowTrace]) -> f64 {
        let truth: Vec<u16> = flows.iter().map(|f| f.label).collect();
        let preds: Vec<u16> = flows.iter().map(|f| self.predict(f)).collect();
        macro_f1(&truth, &preds, self.n_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splidt_flow::{generate, select_flows, spec, stratified_split, DatasetId};

    fn d2() -> (Vec<FlowTrace>, Vec<FlowTrace>, usize) {
        let flows = generate(DatasetId::D2, 700, 17);
        let (tr, te) = stratified_split(&flows, 0.3, 3);
        (
            select_flows(&flows, &tr),
            select_flows(&flows, &te),
            spec(DatasetId::D2).n_classes as usize,
        )
    }

    #[test]
    fn netbeacon_trains_and_classifies() {
        let (tr, te, nc) = d2();
        let nb = NetBeacon::train(&tr, nc, &NetBeaconParams::default());
        assert_eq!(nb.top_k.len(), 4);
        assert_eq!(nb.phase_trees.len(), 5);
        let f1 = nb.evaluate(&te);
        assert!(f1 > 0.4, "NB f1 {f1}");
        let fp = nb.footprint();
        assert_eq!(fp.slots, 4);
        assert!(fp.tcam_entries > 0);
    }

    #[test]
    fn leo_trains_and_classifies() {
        let (tr, te, nc) = d2();
        let leo = Leo::train(&tr, nc, &LeoParams::default());
        let f1 = leo.evaluate(&te);
        assert!(f1 > 0.4, "Leo f1 {f1}");
        // fixed power-of-two geometry
        assert!(leo.tcam_entries().is_power_of_two());
        assert!(leo.tcam_entries() >= 2048);
    }

    #[test]
    fn perpacket_is_weakest() {
        let (tr, te, nc) = d2();
        let pp = PerPacket::train(&tr, nc, 8);
        let leo = Leo::train(&tr, nc, &LeoParams::default());
        let f1_pp = pp.evaluate(&te);
        let f1_leo = leo.evaluate(&te);
        assert!(f1_pp < f1_leo, "per-packet {f1_pp} vs leo {f1_leo}");
        assert!(f1_pp > 0.15, "still above chance: {f1_pp}");
    }

    #[test]
    fn ideal_is_strongest() {
        let (tr, te, nc) = d2();
        let ideal = Ideal::train(&tr, nc, 14);
        let leo = Leo::train(&tr, nc, &LeoParams::default());
        let f1_ideal = ideal.evaluate(&te);
        assert!(f1_ideal > leo.evaluate(&te), "ideal {f1_ideal}");
        assert!(f1_ideal > 0.7);
    }

    #[test]
    fn quantization_reduces_accuracy_mildly() {
        let (tr, te, nc) = d2();
        let full = Leo::train(&tr, nc, &LeoParams::default());
        let coarse = Leo::train(&tr, nc, &LeoParams { feature_bits: 8, ..Default::default() });
        let f_full = full.evaluate(&te);
        let f_coarse = coarse.evaluate(&te);
        assert!(f_coarse <= f_full + 0.05, "8-bit {f_coarse} vs 24-bit {f_full}");
        assert!(f_coarse > f_full - 0.4, "8-bit should not collapse: {f_coarse}");
    }
}
