//! Persistent shard workers: long-lived OS threads that drain frame
//! batches into shard engines, replacing the per-batch `thread::scope`
//! spawn `ShardedEngine::ingest_batch` used to pay.
//!
//! ## Protocol (one dispatcher, one worker per shard)
//!
//! ```text
//!   dispatcher                         worker w
//!   ──────────                         ────────
//!   cmd.send(Batch(&mut shard[w]))  ─▶ recv: borrow the engine
//!   ring.push(frame)* (spin if full)─▶ stream_push into the wave arena
//!   ring.push(EMPTY marker)         ─▶ marker: flush waves, drain digests
//!   report.recv()                   ◀─ send BatchReport; drop the borrow
//! ```
//!
//! * Frames travel over the same bounded SPSC [`crate::ring`] the network
//!   ingress service uses; the dispatcher spins (never drops) on a full
//!   ring because batch dispatch is lossless by contract.
//! * A **zero-length frame is the batch-end marker**. The dispatcher
//!   never enqueues caller frames the steering peek rejected (it
//!   pre-counts them malformed), and a valid frame is never empty, so
//!   the marker is unambiguous.
//! * Between batches a worker blocks on its command channel — zero CPU
//!   while idle, no thread spawn per batch.
//!
//! ## Why the raw pointer is sound
//!
//! `EngineSlot` carries `*mut Engine` across the channel, erasing the
//! borrow lifetime exactly like a scoped thread pool does. The
//! dispatcher (`ShardedEngine::ingest_batch`) creates one `&mut` per
//! shard per batch, sends it, and **blocks on every worker's report
//! before returning** — so the borrow never outlives the `&mut self`
//! call that produced it, and no two live references to one engine ever
//! exist (the worker sends its report only after its last engine
//! access). Workers never touch an engine outside a
//! `Batch`-command/report window.

use crate::engine::{BatchReport, Engine};
use crate::ring::{ring, Consumer, Producer, PushError};
use splidt_dataplane::pipeline::WaveStats;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Core-pinning policy applied once on each worker thread right after
/// it starts, with the worker (shard) index. The policy runs on the
/// worker thread itself, so the affinity call pins the calling thread.
/// Correctness never depends on placement — pinning only stabilizes
/// shard-local cache residency (the flow bank's cache lines stay on one
/// core's L2) and throughput measurements.
#[derive(Clone)]
pub struct PinHook(PinImpl);

#[derive(Clone)]
enum PinImpl {
    /// Caller-supplied hook (tests, exotic topologies).
    Custom(Arc<dyn Fn(usize) + Send + Sync>),
    /// Pin worker `w` to `cores[w % cores.len()]` via `sched_setaffinity`.
    Affinity(Arc<[usize]>),
}

impl PinHook {
    /// An arbitrary per-worker hook (receives the worker index on the
    /// worker thread).
    pub fn custom(f: impl Fn(usize) + Send + Sync + 'static) -> Self {
        Self(PinImpl::Custom(Arc::new(f)))
    }

    /// Round-robin core pinning: worker `w` is pinned to
    /// `core_ids[w % core_ids.len()]` with a raw `sched_setaffinity`
    /// syscall (dependency-free, Linux/x86_64 only). Best-effort like
    /// the huge-page hint: an invalid core id or a foreign platform
    /// leaves the thread unpinned rather than failing the pool.
    pub fn affinity(core_ids: impl Into<Vec<usize>>) -> Self {
        Self(PinImpl::Affinity(core_ids.into().into()))
    }

    /// Applies the policy for worker `w`; called on the worker thread.
    pub(crate) fn apply(&self, w: usize) {
        match &self.0 {
            PinImpl::Custom(f) => f(w),
            PinImpl::Affinity(cores) => {
                if !cores.is_empty() {
                    pin_current_thread(cores[w % cores.len()]);
                }
            }
        }
    }
}

impl std::fmt::Debug for PinHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            PinImpl::Custom(_) => f.write_str("PinHook::custom(..)"),
            PinImpl::Affinity(c) => f.debug_tuple("PinHook::affinity").field(c).finish(),
        }
    }
}

/// Best-effort `sched_setaffinity(0, ..)` on the calling thread via a
/// raw syscall (nr 203 on x86_64), mirroring the dependency-free
/// `madvise` idiom in `splidt_dataplane::register`. Returns whether the
/// kernel accepted the mask; always `false` off Linux/x86_64.
fn pin_current_thread(core: usize) -> bool {
    // One kernel cpu_set_t's worth of bits covers every core id a
    // round-robin shard layout can reasonably name.
    const CPU_SET_BITS: usize = 1024;
    if core >= CPU_SET_BITS {
        return false;
    }
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    {
        const SYS_SCHED_SETAFFINITY: u64 = 203;
        let mut mask = [0u64; CPU_SET_BITS / 64];
        mask[core / 64] = 1u64 << (core % 64);
        let ret: i64;
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") SYS_SCHED_SETAFFINITY => ret,
                in("rdi") 0u64, // pid 0 = the calling thread
                in("rsi") std::mem::size_of_val(&mask),
                in("rdx") mask.as_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack)
            );
        }
        ret == 0
    }
    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    false
}

/// Ring slots per worker. Batches larger than this still dispatch
/// losslessly — the dispatcher spins while the worker drains.
const WORKER_RING_SLOTS: usize = 1024;

/// A `*mut Engine` that may cross the command channel. See the module
/// docs for the aliasing argument; construction is confined to
/// `ShardedEngine::ingest_batch`.
pub(crate) struct EngineSlot(pub(crate) *mut Engine);

// SAFETY: the pointer is only dereferenced by the one worker the
// dispatcher sent it to, strictly between receiving the Batch command
// and sending the batch's report, while the dispatcher blocks inside
// the `&mut self` method that created it (see module docs).
unsafe impl Send for EngineSlot {}

enum Command {
    /// Process one batch from the frame ring (ends at the empty-frame
    /// marker) against this engine, then send a [`BatchReport`].
    Batch(EngineSlot),
}

struct Worker {
    frames: Producer,
    cmd: mpsc::Sender<Command>,
    report: mpsc::Receiver<BatchReport>,
    join: Option<JoinHandle<()>>,
}

/// A fixed set of persistent shard workers (one per shard) plus the
/// dispatcher-side ends of their channels. Dropping the pool shuts the
/// workers down (command channels disconnect) and joins every thread.
pub(crate) struct WorkerPool {
    workers: Vec<Worker>,
    /// Ring slot size the pool was built with; batches carrying longer
    /// frames force a rebuild (`ShardedEngine::ensure_pool`).
    max_frame: usize,
}

impl WorkerPool {
    /// Spawns `n` workers with `max_frame`-byte ring slots, invoking
    /// `pin` (worker index) on each thread at startup.
    pub(crate) fn new(n: usize, max_frame: usize, pin: Option<&PinHook>) -> Self {
        let workers = (0..n)
            .map(|w| {
                let (tx, rx) = ring(WORKER_RING_SLOTS, max_frame);
                let (cmd_tx, cmd_rx) = mpsc::channel();
                let (rep_tx, rep_rx) = mpsc::channel();
                let pin = pin.cloned();
                let join = std::thread::Builder::new()
                    .name(format!("splidt-shard-{w}"))
                    .spawn(move || {
                        if let Some(pin) = pin {
                            pin.apply(w);
                        }
                        worker_loop(rx, cmd_rx, rep_tx);
                    })
                    .expect("spawn shard worker");
                Worker { frames: tx, cmd: cmd_tx, report: rep_rx, join: Some(join) }
            })
            .collect();
        Self { workers, max_frame }
    }

    /// Worker count.
    pub(crate) fn len(&self) -> usize {
        self.workers.len()
    }

    /// Ring slot size.
    pub(crate) fn max_frame(&self) -> usize {
        self.max_frame
    }

    /// Opens a batch on worker `w` against `engine`. The caller must
    /// follow with [`WorkerPool::push`]* / [`WorkerPool::end_batch`] and
    /// then block on [`WorkerPool::collect`] before `engine`'s borrow
    /// expires (see `EngineSlot`).
    pub(crate) fn begin_batch(&mut self, w: usize, engine: *mut Engine) {
        self.workers[w].cmd.send(Command::Batch(EngineSlot(engine))).expect("worker alive");
    }

    /// Queues one frame for worker `w`'s open batch. Lossless: spins
    /// (yielding) while the ring is full — the worker is draining it
    /// concurrently. `frame` must be non-empty and at most `max_frame`
    /// bytes (the dispatcher pre-filters both).
    pub(crate) fn push(&mut self, w: usize, frame: &[u8], ts_us: u64) {
        debug_assert!(!frame.is_empty(), "empty frames are reserved for the batch marker");
        loop {
            match self.workers[w].frames.try_push(frame, ts_us) {
                Ok(()) => return,
                Err(PushError::Full) => std::thread::yield_now(),
                Err(PushError::TooLong) => {
                    unreachable!("ensure_pool sizes ring slots to the batch's longest frame")
                }
            }
        }
    }

    /// Ends worker `w`'s open batch (pushes the empty-frame marker).
    pub(crate) fn end_batch(&mut self, w: usize) {
        loop {
            match self.workers[w].frames.try_push(&[], 0) {
                Ok(()) => return,
                Err(PushError::Full) => std::thread::yield_now(),
                Err(PushError::TooLong) => unreachable!("marker is empty"),
            }
        }
    }

    /// Blocks until worker `w` finishes its open batch and returns the
    /// batch's report (releasing the engine borrow).
    pub(crate) fn collect(&mut self, w: usize) -> BatchReport {
        self.workers[w].report.recv().expect("worker alive until pool drop")
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Disconnect the command channel: the worker's blocking recv
            // returns Err and the thread exits. No batch can be open here
            // (every begin_batch is matched by a blocking collect).
            let (dead_tx, _) = mpsc::channel();
            w.cmd = dead_tx;
            w.frames.close();
        }
        for w in &mut self.workers {
            if let Some(h) = w.join.take() {
                h.join().expect("shard worker panicked");
            }
        }
    }
}

/// One worker's run loop: block for a batch command, drain the frame
/// ring through the engine's burst stream API until the empty-frame
/// marker, then report.
fn worker_loop(
    mut frames: Consumer,
    cmd: mpsc::Receiver<Command>,
    report: mpsc::Sender<BatchReport>,
) {
    while let Ok(Command::Batch(slot)) = cmd.recv() {
        // SAFETY: see `EngineSlot` — the dispatcher blocks in
        // `ingest_batch` until our report lands, and sent this engine to
        // this worker only.
        let engine = unsafe { &mut *slot.0 };
        let mut stats = WaveStats::default();
        let mut malformed = 0u64;
        'batch: loop {
            let avail = frames.readable();
            if avail == 0 {
                std::thread::yield_now();
                continue;
            }
            let mut taken = 0;
            for i in 0..avail {
                let (frame, ts_us) = frames.peek(i);
                if frame.is_empty() {
                    taken = i + 1;
                    frames.advance(taken);
                    break 'batch;
                }
                if !engine.stream_push(frame, ts_us, &mut stats) {
                    malformed += 1;
                }
                taken = i + 1;
            }
            frames.advance(taken);
        }
        let out = engine.stream_report(stats, malformed);
        // The dispatcher may have vanished mid-shutdown only after every
        // collect returned, so a send failure here is unreachable in
        // practice; ignore it rather than poison the worker.
        let _ = report.send(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn custom_hook_runs_once_per_worker_with_its_index() {
        let seen: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let hook = PinHook::custom(move |w| sink.lock().unwrap().push(w));
        let pool = WorkerPool::new(3, 2048, Some(&hook));
        drop(pool); // joins the threads, so every hook has fired
        let mut got = seen.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn affinity_round_robins_over_the_core_list() {
        // apply() itself must not panic for any worker index, and the
        // core selection wraps. (Pinning runs on a scratch thread so the
        // test runner's own affinity is left alone.)
        let hook = PinHook::affinity(vec![0]);
        std::thread::spawn(move || {
            for w in 0..5 {
                hook.apply(w);
            }
        })
        .join()
        .unwrap();
    }

    #[test]
    fn pin_current_thread_accepts_core0_and_rejects_absurd_ids() {
        // Out-of-range ids are refused before reaching the kernel.
        assert!(!pin_current_thread(100_000));
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        std::thread::spawn(|| {
            // Core 0 always exists; the kernel must accept the mask.
            assert!(pin_current_thread(0));
        })
        .join()
        .unwrap();
    }
}
