//! Online training from the engine's own digest stream.
//!
//! Two pieces close the loop the paper's testbed leaves open (retraining
//! happens offline there):
//!
//! * [`StreamingTrainer`] — one SPDT-style [`StreamTree`] per partition
//!   window, sharing the live model's [`SplidtConfig`] so the grown
//!   [`PartitionedTree`] compiles against the exact same resource
//!   envelope (same `k`, same per-partition depths, same feature set).
//! * [`DigestTap`] — mirrors drained digests into the trainer. Ground
//!   truth comes from fixture registrations (`register_flow`): when a
//!   drained digest's fingerprint matches a registered flow, that flow's
//!   per-window feature rows and label are fed to the trainer exactly
//!   once. Real deployments would substitute a label oracle; the tap only
//!   needs `(fp → label, windows)`.
//!
//! The tap keys on the *canonical flow fingerprint* — the same 24-bit
//! value the data plane stores in ownership lanes and emits in digests —
//! so attribution survives slot collisions and lane recycling.

use crate::config::SplidtConfig;
use crate::error::SplidtError;
use crate::model::{LeafTarget, PartitionedTree, Subtree};
use crate::runtime::canonical_flow_fp;
use splidt_dt::stream::{StreamParams, StreamTree};
use splidt_flow::features::catalog;
use splidt_flow::{extract_windows, FlowTrace};
use std::collections::{HashMap, HashSet};

// ------------------------------------------------------------- trainer

/// Knobs for the per-partition streaming trees that are *not* dictated by
/// the model config. Everything structural (depths, `k`, eligible
/// features) is taken from the [`SplidtConfig`] instead.
#[derive(Debug, Clone)]
pub struct StreamingTrainerParams {
    /// Histogram bins per feature (SPDT compression width).
    pub bins: usize,
    /// Samples buffered before bin ranges freeze.
    pub warmup: usize,
    /// Split re-evaluation period per leaf (samples).
    pub split_period: usize,
}

impl Default for StreamingTrainerParams {
    fn default() -> Self {
        Self { bins: 32, warmup: 48, split_period: 24 }
    }
}

/// An online trainer that grows one streaming subtree per partition
/// window and assembles them into a [`PartitionedTree`] with the
/// shared-chaining layout (`sid = partition + 1`, every non-final leaf
/// chains to the next window's subtree).
#[derive(Debug)]
pub struct StreamingTrainer {
    config: SplidtConfig,
    n_classes: usize,
    trees: Vec<StreamTree>,
    observed: u64,
}

impl StreamingTrainer {
    /// Builds a trainer whose output models are drop-in replacements for
    /// `config`-shaped batch models: same partition depths, same distinct
    /// feature budget `k`, splits restricted to hardware-eligible
    /// features.
    pub fn new(config: SplidtConfig, n_classes: usize, params: &StreamingTrainerParams) -> Self {
        let cat = catalog();
        let eligible = cat.hardware_eligible();
        let trees = config
            .partitions
            .iter()
            .map(|&depth| {
                StreamTree::new(
                    cat.len(),
                    n_classes,
                    StreamParams {
                        bins: params.bins,
                        max_depth: depth,
                        min_samples_split: (config.min_samples_leaf * 2).max(2),
                        min_samples_leaf: config.min_samples_leaf,
                        feature_budget: Some(config.k),
                        allowed_features: Some(eligible.clone()),
                        warmup: params.warmup,
                        split_period: params.split_period,
                    },
                )
            })
            .collect();
        Self { config, n_classes, trees, observed: 0 }
    }

    /// Number of partition windows (streaming subtrees).
    pub fn n_partitions(&self) -> usize {
        self.trees.len()
    }

    /// Labelled flows observed since the last [`reset`](Self::reset).
    pub fn n_observed(&self) -> u64 {
        self.observed
    }

    /// Feeds one labelled flow: `windows[w]` is the feature row for
    /// partition window `w` (as produced by `extract_windows`).
    pub fn observe(&mut self, windows: &[Vec<f32>], label: u16) {
        assert_eq!(
            windows.len(),
            self.trees.len(),
            "window count must match the config's partition count"
        );
        for (tree, row) in self.trees.iter_mut().zip(windows) {
            tree.update(row, label);
        }
        self.observed += 1;
    }

    /// Grows every streaming subtree and assembles the partitioned model.
    ///
    /// Layout: partition `w` becomes subtree `sid = w + 1`; every leaf of
    /// a non-final partition chains to the next window's subtree with the
    /// leaf's own majority class as early-exit fallback; final-partition
    /// leaves classify directly.
    pub fn train(&mut self) -> Result<PartitionedTree, SplidtError> {
        let p = self.trees.len();
        let mut subtrees = Vec::with_capacity(p);
        for (w, st) in self.trees.iter_mut().enumerate() {
            let tree = st.grow();
            let leaf_targets = tree
                .leaves()
                .iter()
                .map(|leaf| {
                    if w + 1 < p {
                        LeafTarget::Next { sid: (w + 2) as u16, fallback: leaf.label }
                    } else {
                        LeafTarget::Class(leaf.label)
                    }
                })
                .collect();
            subtrees.push(Subtree { sid: (w + 1) as u16, partition: w, tree, leaf_targets });
        }
        let model =
            PartitionedTree { config: self.config.clone(), subtrees, n_classes: self.n_classes };
        model.validate().map_err(SplidtError::Model)?;
        Ok(model)
    }

    /// Discards all histogram state and grown structure; the config and
    /// feature restrictions stay.
    pub fn reset(&mut self) {
        for tree in &mut self.trees {
            tree.reset();
        }
        self.observed = 0;
    }
}

// ----------------------------------------------------------------- tap

/// Observability counters for a [`DigestTap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DigestTapStats {
    /// Distinct flows fed to the trainer.
    pub fed: u64,
    /// Drained digests whose fingerprint matched no registration.
    pub unmatched: u64,
    /// Registered fixture flows.
    pub registered: usize,
}

/// Mirrors the engine's drained digests into a [`StreamingTrainer`].
///
/// Registration (`register_flow`) caches the flow's label and per-window
/// feature rows keyed by canonical fingerprint; when the engine later
/// drains *any* digest for that fingerprint (early exit or flow end), the
/// cached sample is fed to the trainer exactly once.
#[derive(Debug)]
pub struct DigestTap {
    trainer: StreamingTrainer,
    registry: HashMap<u64, (u16, Vec<Vec<f32>>)>,
    seen: HashSet<u64>,
    fed: u64,
    unmatched: u64,
}

impl DigestTap {
    /// Wraps a trainer; feed it via an [`Engine`](crate::engine::Engine)
    /// with `Engine::attach_tap`.
    pub fn new(trainer: StreamingTrainer) -> Self {
        Self { trainer, registry: HashMap::new(), seen: HashSet::new(), fed: 0, unmatched: 0 }
    }

    /// Registers a fixture flow as a ground-truth source: its label and
    /// per-window feature rows become available to digests carrying its
    /// canonical fingerprint.
    pub fn register_flow(&mut self, flow: &FlowTrace) {
        let fp = canonical_flow_fp(flow);
        let windows = extract_windows(flow, self.trainer.n_partitions(), catalog());
        self.registry.insert(fp, (flow.label, windows));
    }

    /// Feeds the flow behind a drained digest's fingerprint to the
    /// trainer (once per flow; repeats and unknown fingerprints are
    /// counted, not fed). Called by the engine's digest drain.
    pub fn observe_fp(&mut self, fp: u64) {
        if let Some((label, windows)) = self.registry.get(&fp) {
            if self.seen.insert(fp) {
                self.trainer.observe(windows, *label);
                self.fed += 1;
            }
        } else {
            self.unmatched += 1;
        }
    }

    /// The wrapped trainer (e.g. to check `n_observed`).
    pub fn trainer(&self) -> &StreamingTrainer {
        &self.trainer
    }

    /// Grows a model from everything observed so far.
    pub fn train(&mut self) -> Result<PartitionedTree, SplidtError> {
        self.trainer.train()
    }

    /// Current counters.
    pub fn stats(&self) -> DigestTapStats {
        DigestTapStats { fed: self.fed, unmatched: self.unmatched, registered: self.registry.len() }
    }

    /// Forgets every observation (histograms, dedupe set, counters) but
    /// keeps flow registrations — the fixture ground truth is still
    /// valid, only the learned distribution is discarded. Use at a drift
    /// alarm so retraining sees post-drift traffic only.
    pub fn reset_observations(&mut self) {
        self.trainer.reset();
        self.seen.clear();
        self.fed = 0;
        self.unmatched = 0;
    }

    /// Full reset: observations *and* registrations.
    pub fn reset(&mut self) {
        self.reset_observations();
        self.registry.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplidtConfig;
    use splidt_flow::{churn, ChurnConfig, DatasetId};

    fn test_config() -> SplidtConfig {
        SplidtConfig { partitions: vec![3, 3], k: 3, ..SplidtConfig::default() }
    }

    fn flows(n: usize) -> Vec<FlowTrace> {
        churn(DatasetId::D2, &ChurnConfig { flows: n, seed: 7, ..ChurnConfig::default() }).flows
    }

    #[test]
    fn trainer_grows_valid_chained_model() {
        let flows = flows(300);
        let cfg = test_config();
        let mut tr = StreamingTrainer::new(cfg.clone(), 4, &StreamingTrainerParams::default());
        for f in &flows {
            tr.observe(&extract_windows(f, cfg.n_partitions(), catalog()), f.label);
        }
        assert_eq!(tr.n_observed(), 300);
        let model = tr.train().expect("stream-trained model must validate");
        assert_eq!(model.subtrees.len(), 2);
        assert_eq!(model.subtrees[0].sid, 1);
        assert_eq!(model.subtrees[1].sid, 2);
        // Every first-window leaf chains to the second subtree.
        for t in &model.subtrees[0].leaf_targets {
            match t {
                LeafTarget::Next { sid, .. } => assert_eq!(*sid, 2),
                LeafTarget::Class(_) => panic!("non-final partition must chain"),
            }
        }
        for t in &model.subtrees[1].leaf_targets {
            assert!(matches!(t, LeafTarget::Class(_)), "final partition must classify");
        }
    }

    #[test]
    fn trainer_is_deterministic() {
        let flows = flows(200);
        let cfg = test_config();
        let grow = || {
            let mut tr = StreamingTrainer::new(cfg.clone(), 4, &StreamingTrainerParams::default());
            for f in &flows {
                tr.observe(&extract_windows(f, cfg.n_partitions(), catalog()), f.label);
            }
            tr.train().unwrap()
        };
        assert_eq!(format!("{:?}", grow()), format!("{:?}", grow()));
    }

    #[test]
    fn trainer_learns_the_labels_it_sees() {
        let flows = flows(600);
        let cfg = test_config();
        let mut tr = StreamingTrainer::new(cfg.clone(), 4, &StreamingTrainerParams::default());
        for f in &flows {
            tr.observe(&extract_windows(f, cfg.n_partitions(), catalog()), f.label);
        }
        let model = tr.train().unwrap();
        let hits = flows
            .iter()
            .filter(|f| {
                let w = extract_windows(f, cfg.n_partitions(), catalog());
                model.predict(&w).class == f.label
            })
            .count();
        // Training accuracy well above the 1-in-4 chance floor.
        assert!(hits * 2 > flows.len(), "train accuracy too low: {hits}/{}", flows.len());
    }

    #[test]
    fn tap_feeds_each_registered_flow_once() {
        let flows = flows(100);
        let cfg = test_config();
        let mut tap =
            DigestTap::new(StreamingTrainer::new(cfg, 4, &StreamingTrainerParams::default()));
        for f in &flows {
            tap.register_flow(f);
        }
        for f in &flows {
            let fp = canonical_flow_fp(f);
            tap.observe_fp(fp);
            tap.observe_fp(fp); // duplicate digest: must not double-feed
        }
        tap.observe_fp(0xdead_beef); // never registered
        let s = tap.stats();
        assert_eq!(s.fed, 100);
        assert_eq!(s.unmatched, 1);
        assert_eq!(s.registered, 100);
        assert_eq!(tap.trainer().n_observed(), 100);
    }

    #[test]
    fn tap_reset_observations_keeps_registrations() {
        let flows = flows(50);
        let cfg = test_config();
        let mut tap =
            DigestTap::new(StreamingTrainer::new(cfg, 4, &StreamingTrainerParams::default()));
        for f in &flows {
            tap.register_flow(f);
            tap.observe_fp(canonical_flow_fp(f));
        }
        tap.reset_observations();
        let s = tap.stats();
        assert_eq!((s.fed, s.unmatched, s.registered), (0, 0, 50));
        assert_eq!(tap.trainer().n_observed(), 0);
        // Re-observing after the reset feeds again — the dedupe set cleared.
        tap.observe_fp(canonical_flow_fp(&flows[0]));
        assert_eq!(tap.stats().fed, 1);
        // Full reset drops registrations too.
        tap.reset();
        assert_eq!(tap.stats().registered, 0);
    }
}
