//! # splidt-core — SpliDT: partitioned decision trees at line rate
//!
//! The paper's primary contribution ([SIGCOMM 2025](https://arxiv.org/abs/2509.00397)),
//! reproduced end to end:
//!
//! * [`config`] / [`model`] — partitioned-tree configurations and the model
//!   itself (subtrees, SIDs, per-subtree feature sets, early exits);
//! * [`train`] — Algorithm 1, the recursive per-partition training;
//! * [`mod@compile`] — partitioned tree → match-action pipeline program
//!   (operator-selection MATs, key-generator MATs, the Range-Marking model
//!   MAT, register allocation, resubmission protocol);
//! * [`engine`] — the session-oriented streaming engine: the [`Classifier`]
//!   contract shared by SpliDT and every baseline, compile-once
//!   [`Engine`]s, and thread-per-shard [`ShardedEngine`]s;
//! * [`error`] — the crate-level [`SplidtError`];
//! * [`runtime`] — batch wrappers over the engine with
//!   digest-vs-software equivalence checking;
//! * [`resources`] — the analytic feasibility model (flows ↔ registers ↔
//!   TCAM ↔ stages) driving the design search;
//! * [`mod@lower`] — the backend lowering entry point bundling a compiled
//!   model with its resource model for emitters (`splidt_p4`), plus the
//!   program ↔ footprint cross-check;
//! * [`recirc`] / [`ttd`] — recirculation-bandwidth and time-to-detection
//!   analyses (Tables 1/5, Figure 10);
//! * [`baselines`] — NetBeacon, Leo, per-packet and ideal comparators.

pub mod baselines;
pub mod compile;
pub mod config;
pub mod engine;
pub mod error;
pub mod lower;
pub mod model;
pub mod recirc;
pub mod resources;
pub mod ring;
pub mod runtime;
pub mod stream;
pub mod train;
pub mod ttd;
pub mod workers;

/// Default feature precision (bits) — re-exported for configs.
pub const FEATURE_BITS_DEFAULT: u8 = splidt_flow::FEATURE_BITS;

pub use compile::{
    compile, compile_with, model_rules, CompileOptions, CompiledModel, LifecyclePolicy,
    RulesSummary,
};
pub use config::SplidtConfig;
pub use engine::{
    BatchReport, Classifier, Engine, EngineBuilder, ShardedEngine, Trainable, Verdict,
    DEFAULT_BURST,
};
pub use error::SplidtError;
pub use lower::{lower, Lowering, ResourceExpectation};
pub use model::{Inference, LeafTarget, PartitionedTree, Subtree};
pub use resources::{
    bank_physical, estimate, max_flows, splidt_footprint, BankPhysical, ModelFootprint,
};
pub use runtime::{
    canonical_flow_fp, canonical_flow_index, run_flows, run_flows_compiled, IngressShardStats,
    IngressStats, LifecycleStats, RuntimeReport, SlotPressure,
};
pub use stream::{DigestTap, DigestTapStats, StreamingTrainer, StreamingTrainerParams};
pub use train::{evaluate_partitioned, train_partitioned};
pub use workers::PinHook;
