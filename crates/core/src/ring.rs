//! Bounded single-producer / single-consumer frame rings — the hand-off
//! between a frame dispatcher and one shard's run-to-completion
//! consumer. Two subsystems share this implementation: the `splidt-net`
//! ingress service (receiver thread → shard consumer threads) and the
//! engine's persistent shard workers ([`crate::workers`], dispatcher →
//! worker batches).
//!
//! Design constraints, in order:
//!
//! 1. **The producer never blocks.** [`Producer::try_push`] either copies
//!    the frame into a preallocated slot or returns
//!    [`PushError::Full`] immediately — backpressure is *drop and count*,
//!    so a slow shard can never stall the socket loop (and with it every
//!    other shard).
//! 2. **The consumer borrows, it does not copy.** [`Consumer::peek`]
//!    hands out `(&[u8], u64)` views straight into ring slots, so a whole
//!    batch flows into `Engine::ingest_batch` with zero allocations and
//!    zero additional copies; [`Consumer::advance`] releases the slots
//!    afterwards.
//! 3. **All slot memory is allocated up front.** Each slot owns a
//!    fixed-size frame buffer (`max_frame` bytes), so the steady state
//!    performs no heap allocation on either side — verified by the
//!    `ingress_smoke` counting-allocator probe.
//!
//! The SPSC discipline is enforced by ownership: [`ring`] returns exactly
//! one [`Producer`] and one [`Consumer`], neither of which is cloneable.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Why a push was refused. Both cases are non-blocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Every slot is occupied — the consumer is behind. The frame should
    /// be dropped and counted (`dropped_ring_full`).
    Full,
    /// The frame exceeds the ring's `max_frame` slot size. Counted as
    /// malformed input: nothing that large can be a valid frame for this
    /// deployment's MTU.
    TooLong,
}

struct Slot {
    ts_us: u64,
    len: usize,
    buf: Box<[u8]>,
}

struct Shared {
    slots: Box<[UnsafeCell<Slot>]>,
    /// Next slot index the consumer will read (free-running counter).
    head: AtomicUsize,
    /// Next slot index the producer will write (free-running counter).
    tail: AtomicUsize,
    closed: AtomicBool,
}

// SAFETY: slot cells are only ever accessed by the single producer (for
// indices in `[tail, head + capacity)`) or the single consumer (for
// indices in `[head, tail)`), with the head/tail Acquire/Release pair
// ordering the hand-off; the `ring` constructor makes the single-ness
// structural (neither endpoint is cloneable).
unsafe impl Send for Shared {}
unsafe impl Sync for Shared {}

/// Creates a bounded SPSC ring of `capacity` slots, each holding up to
/// `max_frame` bytes (all allocated up front).
pub fn ring(capacity: usize, max_frame: usize) -> (Producer, Consumer) {
    assert!(capacity > 0, "ring capacity must be positive");
    let slots = (0..capacity)
        .map(|_| {
            UnsafeCell::new(Slot { ts_us: 0, len: 0, buf: vec![0u8; max_frame].into_boxed_slice() })
        })
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let shared = Arc::new(Shared {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
    });
    (Producer { shared: Arc::clone(&shared) }, Consumer { shared })
}

/// The write end (exactly one per ring).
pub struct Producer {
    shared: Arc<Shared>,
}

impl Producer {
    /// Copies `frame` (with its ingress timestamp) into the next free
    /// slot. Never blocks: a full ring or an oversized frame is refused
    /// immediately with the corresponding [`PushError`].
    pub fn try_push(&mut self, frame: &[u8], ts_us: u64) -> Result<(), PushError> {
        let cap = self.shared.slots.len();
        let head = self.shared.head.load(Ordering::Acquire);
        let tail = self.shared.tail.load(Ordering::Relaxed);
        if tail.wrapping_sub(head) >= cap {
            return Err(PushError::Full);
        }
        // SAFETY: `tail` is outside `[head, tail)`, so the consumer holds
        // no borrow of this slot; we are the only producer.
        let slot = unsafe { &mut *self.shared.slots[tail % cap].get() };
        if frame.len() > slot.buf.len() {
            return Err(PushError::TooLong);
        }
        slot.buf[..frame.len()].copy_from_slice(frame);
        slot.len = frame.len();
        slot.ts_us = ts_us;
        self.shared.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Marks the ring closed: the consumer drains what is already queued,
    /// then sees end-of-stream. Pushes after `close` are a logic error
    /// (they still succeed mechanically; the service never does this).
    pub fn close(&self) {
        self.shared.closed.store(true, Ordering::Release);
    }

    /// Slots currently queued (diagnostic).
    pub fn len(&self) -> usize {
        self.shared
            .tail
            .load(Ordering::Relaxed)
            .wrapping_sub(self.shared.head.load(Ordering::Acquire))
    }

    /// Whether nothing is queued (diagnostic).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The read end (exactly one per ring).
pub struct Consumer {
    shared: Arc<Shared>,
}

impl Consumer {
    /// Frames currently readable via [`Consumer::peek`].
    pub fn readable(&self) -> usize {
        let tail = self.shared.tail.load(Ordering::Acquire);
        tail.wrapping_sub(self.shared.head.load(Ordering::Relaxed))
    }

    /// Whether the producer closed the ring. Queued frames remain
    /// readable; end-of-stream is `is_closed() && readable() == 0`.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }

    /// Borrows queued frame `i` (0-based from the oldest unconsumed;
    /// `i` must be `< readable()`). The borrow pins the slot: `advance`
    /// takes `&mut self`, so no released slot can be observed.
    pub fn peek(&self, i: usize) -> (&[u8], u64) {
        debug_assert!(i < self.readable(), "peek past readable window");
        let cap = self.shared.slots.len();
        let head = self.shared.head.load(Ordering::Relaxed);
        // SAFETY: `head + i < tail` (asserted above), so the producer
        // will not touch this slot until `advance` moves `head` past it —
        // which borrows `self` mutably and therefore cannot happen while
        // the returned slice is alive.
        let slot = unsafe { &*self.shared.slots[head.wrapping_add(i) % cap].get() };
        (&slot.buf[..slot.len], slot.ts_us)
    }

    /// Releases the `n` oldest queued slots back to the producer.
    pub fn advance(&mut self, n: usize) {
        debug_assert!(n <= self.readable(), "advance past readable window");
        let head = self.shared.head.load(Ordering::Relaxed);
        self.shared.head.store(head.wrapping_add(n), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_ring_refuses_without_blocking() {
        let (mut tx, _rx) = ring(4, 64);
        for i in 0..4u8 {
            tx.try_push(&[i; 8], i as u64).unwrap();
        }
        // No consumer progress: the 5th push must fail *immediately*.
        assert_eq!(tx.try_push(&[9; 8], 9), Err(PushError::Full));
        assert_eq!(tx.len(), 4);
    }

    #[test]
    fn oversized_frames_are_refused() {
        let (mut tx, rx) = ring(2, 16);
        assert_eq!(tx.try_push(&[0; 17], 0), Err(PushError::TooLong));
        assert_eq!(rx.readable(), 0, "refused frame must not occupy a slot");
        tx.try_push(&[0; 16], 0).unwrap();
    }

    #[test]
    fn frames_round_trip_in_order_across_wrap() {
        let (mut tx, mut rx) = ring(3, 32);
        let mut next = 0u8;
        let mut seen = Vec::new();
        // Push/pop enough to wrap the 3-slot ring several times.
        for round in 0..5 {
            let n = 1 + (round % 3);
            for _ in 0..n {
                tx.try_push(&[next, next, next], next as u64 * 10).unwrap();
                next += 1;
            }
            let avail = rx.readable();
            assert_eq!(avail, n);
            for i in 0..avail {
                let (frame, ts) = rx.peek(i);
                seen.push((frame[0], ts));
            }
            rx.advance(avail);
        }
        let expect: Vec<(u8, u64)> = (0..next).map(|v| (v, v as u64 * 10)).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn close_drains_then_signals_end_of_stream() {
        let (mut tx, mut rx) = ring(4, 8);
        tx.try_push(&[1], 1).unwrap();
        tx.try_push(&[2], 2).unwrap();
        tx.close();
        assert!(rx.is_closed());
        assert_eq!(rx.readable(), 2, "queued frames survive close");
        rx.advance(2);
        assert!(rx.is_closed() && rx.readable() == 0);
    }

    #[test]
    fn producer_consumer_threads_agree_on_every_frame() {
        let (mut tx, mut rx) = ring(8, 16);
        let n = 10_000u64;
        std::thread::scope(|s| {
            s.spawn(move || {
                let mut sent = 0u64;
                while sent < n {
                    let b = [sent as u8; 4];
                    if tx.try_push(&b, sent).is_ok() {
                        sent += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
                tx.close();
            });
            let mut expect = 0u64;
            loop {
                let avail = rx.readable();
                if avail == 0 {
                    if rx.is_closed() && rx.readable() == 0 {
                        break;
                    }
                    std::thread::yield_now();
                    continue;
                }
                for i in 0..avail {
                    let (frame, ts) = rx.peek(i);
                    assert_eq!(ts, expect);
                    assert_eq!(frame, [expect as u8; 4]);
                    expect += 1;
                }
                rx.advance(avail);
            }
            assert_eq!(expect, n);
        });
    }
}
