//! Recirculation-bandwidth accounting for partitioned models
//! (Tables 1 and 5 of the paper).
//!
//! SpliDT resubmits exactly one control packet per window boundary
//! (`p − 1` per flow, plus possibly one terminal resubmission after an
//! early exit — bounded by the same `p − 1`). The bandwidth therefore
//! follows the flow-churn rate of the datacenter environment; this module
//! glues a model's partition count to the [`splidt_flow::dcn`] workload
//! models.

use crate::model::PartitionedTree;
use splidt_flow::dcn::{recirc_mbps_analytic, simulate_recirc, Environment, RecircStats};

/// Recirculation statistics of a model under an environment at a flow
/// count.
pub fn model_recirc(
    model: &PartitionedTree,
    env: &Environment,
    n_flows: u64,
    seed: u64,
) -> RecircStats {
    simulate_recirc(env, n_flows, model.n_partitions(), seed, 600)
}

/// Analytic mean (headline of Tables 1/5).
pub fn model_recirc_analytic(model: &PartitionedTree, env: &Environment, n_flows: u64) -> f64 {
    recirc_mbps_analytic(env, n_flows, model.n_partitions())
}

/// Fraction of the target's recirculation bandwidth consumed (the paper's
/// "≤ 0.05 %" headline claim).
pub fn recirc_fraction(mbps: f64, recirc_gbps: f64) -> f64 {
    mbps / (recirc_gbps * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SplidtConfig;
    use crate::model::{LeafTarget, PartitionedTree, Subtree};
    use splidt_dt::Tree;

    fn model_with_partitions(p: usize) -> PartitionedTree {
        // A chain of single-leaf subtrees is enough for recirc accounting.
        let mut subtrees = Vec::new();
        for i in 0..p {
            let target = if i + 1 < p {
                LeafTarget::Next { sid: (i + 2) as u16, fallback: 0 }
            } else {
                LeafTarget::Class(0)
            };
            subtrees.push(Subtree {
                sid: (i + 1) as u16,
                partition: i,
                tree: Tree::leaf(0, 1, 4),
                leaf_targets: vec![target],
            });
        }
        PartitionedTree {
            config: SplidtConfig { partitions: vec![1; p], k: 2, ..Default::default() },
            subtrees,
            n_classes: 2,
        }
    }

    #[test]
    fn more_partitions_more_bandwidth() {
        let ws = Environment::webserver();
        let m3 = model_recirc_analytic(&model_with_partitions(3), &ws, 500_000);
        let m6 = model_recirc_analytic(&model_with_partitions(6), &ws, 500_000);
        assert!(m6 > m3 * 2.0);
    }

    #[test]
    fn single_partition_zero() {
        let ws = Environment::webserver();
        assert_eq!(model_recirc_analytic(&model_with_partitions(1), &ws, 1_000_000), 0.0);
    }

    #[test]
    fn fraction_of_budget_is_tiny() {
        let hd = Environment::hadoop();
        let m = model_with_partitions(6);
        let stats = model_recirc(&m, &hd, 1_000_000, 7);
        // The paper's worst case: ~0.05% of the 100 Gbps recirc budget.
        let frac = recirc_fraction(stats.max_mbps, 100.0);
        assert!(frac < 0.005, "fraction {frac}");
        assert!(frac > 0.0);
    }
}
