//! SpliDT model configuration — the hyper-parameters the design search
//! explores (paper §3.2.1: tree depth `D`, features per subtree `k`, and
//! the partition-size vector `[i1, …, ip]` with `Σ i_j = D`).

use serde::{Deserialize, Serialize};

/// A partitioned-tree configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplidtConfig {
    /// Per-partition subtree depths `[i1, …, ip]`; total depth `D` is the
    /// sum, the number of partitions `p` is the length.
    pub partitions: Vec<usize>,
    /// Feature slots per subtree (`k`).
    pub k: usize,
    /// Feature value precision in bits (24 by default; 16/8 for the
    /// bit-precision ablation of Figure 12).
    pub feature_bits: u8,
    /// Minimum training samples for a leaf.
    pub min_samples_leaf: usize,
    /// Minimum samples a leaf must route onward to spawn a next-partition
    /// subtree (below this the leaf becomes an early exit).
    pub min_subtree_samples: usize,
    /// Hard cap on total subtrees (the paper's operator-selection MATs
    /// hold ≤ 200 entries each).
    pub max_subtrees: usize,
    /// Candidate-threshold cap per feature per split (0 = exact search).
    pub max_thresholds_per_feature: usize,
}

impl Default for SplidtConfig {
    fn default() -> Self {
        Self {
            partitions: vec![2, 2, 2],
            k: 4,
            feature_bits: crate::FEATURE_BITS_DEFAULT,
            min_samples_leaf: 3,
            min_subtree_samples: 24,
            max_subtrees: 200,
            max_thresholds_per_feature: 32,
        }
    }
}

impl SplidtConfig {
    /// Number of partitions `p`.
    pub fn n_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total tree depth `D = Σ i_j`.
    pub fn total_depth(&self) -> usize {
        self.partitions.iter().sum()
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.partitions.is_empty() {
            return Err("at least one partition".into());
        }
        if self.partitions.contains(&0) {
            return Err("partition depths must be ≥ 1".into());
        }
        if self.partitions.len() > 16 {
            return Err("too many partitions (sid budget)".into());
        }
        if self.k == 0 || self.k > 16 {
            return Err("k must be in 1..=16".into());
        }
        if !matches!(self.feature_bits, 8 | 16 | 24) {
            return Err("feature_bits must be 8, 16 or 24".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        let c = SplidtConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.n_partitions(), 3);
        assert_eq!(c.total_depth(), 6);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = SplidtConfig { partitions: vec![], ..Default::default() };
        assert!(c.validate().is_err());
        c.partitions = vec![2, 0];
        assert!(c.validate().is_err());
        c.partitions = vec![2];
        c.k = 0;
        assert!(c.validate().is_err());
        c.k = 4;
        c.feature_bits = 12;
        assert!(c.validate().is_err());
    }
}
