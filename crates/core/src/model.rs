//! The partitioned decision-tree model (paper §3.1, Figure 3).
//!
//! A [`PartitionedTree`] is a DAG of subtrees grouped into partitions. Each
//! subtree has its own (≤ k) feature set; traversal advances one subtree
//! per window, the verdict of one window selecting the next subtree (or a
//! final class). Subtree ids (SIDs) are 1-based; SID 0 is the terminal
//! "done" state after an early exit.

use crate::config::SplidtConfig;
use serde::{Deserialize, Serialize};
use splidt_dt::Tree;
use std::collections::BTreeSet;

/// Where a subtree leaf sends the flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeafTarget {
    /// Continue into a next-partition subtree. `fallback` is the leaf's
    /// majority class, emitted if the flow ends before the next window
    /// completes (the data plane digests it at flow end).
    Next {
        /// SID of the next subtree.
        sid: u16,
        /// Majority class at this leaf.
        fallback: u16,
    },
    /// Classify now (final partition or early exit).
    Class(u16),
}

/// One subtree of the partitioned model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Subtree {
    /// 1-based subtree id.
    pub sid: u16,
    /// Partition index (0-based).
    pub partition: usize,
    /// The trained tree (references global feature columns).
    pub tree: Tree,
    /// Per-leaf targets, indexed by the tree's dense `leaf_index`.
    pub leaf_targets: Vec<LeafTarget>,
}

impl Subtree {
    /// The distinct features this subtree matches on (≤ k).
    pub fn features(&self) -> Vec<usize> {
        self.tree.features_used().into_iter().collect()
    }
}

/// A trained partitioned decision tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionedTree {
    /// The configuration it was trained with.
    pub config: SplidtConfig,
    /// Subtrees; index `i` holds SID `i + 1`.
    pub subtrees: Vec<Subtree>,
    /// Number of classes.
    pub n_classes: usize,
}

/// Outcome of software inference over a flow's windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inference {
    /// Final class.
    pub class: u16,
    /// SIDs visited, in order (starts with 1).
    pub path: Vec<u16>,
    /// Number of windows consumed before the verdict.
    pub windows_used: usize,
    /// True when the verdict came from an early-exit or final Class leaf
    /// (false = flow ended mid-tree and the fallback class was used).
    pub exact: bool,
}

impl PartitionedTree {
    /// Number of partitions.
    pub fn n_partitions(&self) -> usize {
        self.config.partitions.len()
    }

    /// Number of subtrees.
    pub fn n_subtrees(&self) -> usize {
        self.subtrees.len()
    }

    /// Borrow a subtree by SID (1-based).
    pub fn subtree(&self, sid: u16) -> &Subtree {
        &self.subtrees[(sid - 1) as usize]
    }

    /// Distinct features used across all subtrees — the paper's
    /// "#Features" metric (Table 3), the quantity SpliDT scales ~5× over
    /// top-k baselines.
    pub fn total_features(&self) -> BTreeSet<usize> {
        self.subtrees.iter().flat_map(|s| s.features()).collect()
    }

    /// Maximum distinct features in any single subtree (must be ≤ k).
    pub fn max_features_per_subtree(&self) -> usize {
        self.subtrees.iter().map(|s| s.features().len()).max().unwrap_or(0)
    }

    /// Total depth actually realized (≤ configured `D`).
    pub fn realized_depth(&self) -> usize {
        // max over root-to-exit chains of per-partition depths
        fn go(m: &PartitionedTree, sid: u16) -> usize {
            let st = m.subtree(sid);
            let own = st.tree.depth();
            let mut best = 0;
            for t in &st.leaf_targets {
                if let LeafTarget::Next { sid: next, .. } = t {
                    best = best.max(go(m, *next));
                }
            }
            own + best
        }
        if self.subtrees.is_empty() {
            0
        } else {
            go(self, 1)
        }
    }

    /// Structural validation: SID links well-formed, partitions ordered,
    /// per-subtree feature budget respected.
    pub fn validate(&self) -> Result<(), String> {
        if self.subtrees.is_empty() {
            return Err("no subtrees".into());
        }
        for (i, st) in self.subtrees.iter().enumerate() {
            if st.sid as usize != i + 1 {
                return Err(format!("subtree {} has sid {}", i, st.sid));
            }
            if st.features().len() > self.config.k {
                return Err(format!(
                    "subtree {} uses {} features > k = {}",
                    st.sid,
                    st.features().len(),
                    self.config.k
                ));
            }
            if st.tree.depth() > self.config.partitions[st.partition] {
                return Err(format!("subtree {} too deep", st.sid));
            }
            if st.leaf_targets.len() != st.tree.n_leaves() as usize {
                return Err(format!("subtree {} leaf target arity", st.sid));
            }
            for t in &st.leaf_targets {
                match t {
                    LeafTarget::Next { sid, .. } => {
                        let next = self
                            .subtrees
                            .get((*sid - 1) as usize)
                            .ok_or_else(|| format!("dangling sid {sid}"))?;
                        if next.partition != st.partition + 1 {
                            return Err(format!(
                                "sid {} (p{}) links to sid {} (p{})",
                                st.sid, st.partition, sid, next.partition
                            ));
                        }
                    }
                    LeafTarget::Class(c) => {
                        if *c as usize >= self.n_classes {
                            return Err(format!("class {c} out of range"));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Software inference over a flow's per-window feature rows — the
    /// reference semantics the data-plane runtime must reproduce exactly.
    pub fn predict(&self, windows: &[Vec<f32>]) -> Inference {
        let mut sid: u16 = 1;
        let mut path = vec![1u16];
        for (w, row) in windows.iter().enumerate() {
            let st = self.subtree(sid);
            let leaf = st.tree.leaf_index_of(row) as usize;
            match st.leaf_targets[leaf] {
                LeafTarget::Class(c) => {
                    return Inference { class: c, path, windows_used: w + 1, exact: true };
                }
                LeafTarget::Next { sid: next, fallback } => {
                    if w + 1 == windows.len() {
                        // Flow ended at this boundary: digest the fallback.
                        return Inference {
                            class: fallback,
                            path,
                            windows_used: w + 1,
                            exact: false,
                        };
                    }
                    sid = next;
                    path.push(next);
                }
            }
        }
        // No windows at all (cannot happen for non-empty flows).
        Inference { class: 0, path, windows_used: 0, exact: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use splidt_dt::Node;

    /// Two-partition model: root subtree splits on f0; left leaf exits
    /// with class 0, right leaf continues to subtree 2 which splits on f1.
    pub(crate) fn toy_model() -> PartitionedTree {
        let t1 = Tree::from_arena(
            vec![
                Node::Split { feature: 0, threshold: 10.0, left: 1, right: 2 },
                Node::Leaf { label: 0, n_samples: 5, leaf_index: 0 },
                Node::Leaf { label: 1, n_samples: 5, leaf_index: 1 },
            ],
            0,
            3,
        );
        let t2 = Tree::from_arena(
            vec![
                Node::Split { feature: 1, threshold: 100.0, left: 1, right: 2 },
                Node::Leaf { label: 1, n_samples: 3, leaf_index: 0 },
                Node::Leaf { label: 2, n_samples: 2, leaf_index: 1 },
            ],
            0,
            3,
        );
        PartitionedTree {
            config: SplidtConfig { partitions: vec![1, 1], k: 2, ..Default::default() },
            subtrees: vec![
                Subtree {
                    sid: 1,
                    partition: 0,
                    tree: t1,
                    leaf_targets: vec![
                        LeafTarget::Class(0),
                        LeafTarget::Next { sid: 2, fallback: 1 },
                    ],
                },
                Subtree {
                    sid: 2,
                    partition: 1,
                    tree: t2,
                    leaf_targets: vec![LeafTarget::Class(1), LeafTarget::Class(2)],
                },
            ],
            n_classes: 3,
        }
    }

    #[test]
    fn validates() {
        assert_eq!(toy_model().validate(), Ok(()));
    }

    #[test]
    fn predict_walks_partitions() {
        let m = toy_model();
        // f0 ≤ 10 → early exit class 0 in window 1
        let inf = m.predict(&[vec![5.0, 0.0, 0.0], vec![0.0, 0.0, 0.0]]);
        assert_eq!(inf.class, 0);
        assert_eq!(inf.windows_used, 1);
        assert!(inf.exact);
        // f0 > 10 → subtree 2; window 2 f1 ≤ 100 → class 1
        let inf = m.predict(&[vec![50.0, 0.0, 0.0], vec![0.0, 50.0, 0.0]]);
        assert_eq!(inf.class, 1);
        assert_eq!(inf.path, vec![1, 2]);
        // f1 > 100 → class 2
        let inf = m.predict(&[vec![50.0, 0.0, 0.0], vec![0.0, 500.0, 0.0]]);
        assert_eq!(inf.class, 2);
        assert!(inf.exact);
    }

    #[test]
    fn flow_ending_early_uses_fallback() {
        let m = toy_model();
        // only one window, and it routes to subtree 2 → fallback class 1
        let inf = m.predict(&[vec![50.0, 0.0, 0.0]]);
        assert_eq!(inf.class, 1);
        assert!(!inf.exact);
    }

    #[test]
    fn feature_accounting() {
        let m = toy_model();
        assert_eq!(m.total_features().into_iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(m.max_features_per_subtree(), 1);
        assert_eq!(m.realized_depth(), 2);
    }

    #[test]
    fn validate_catches_bad_links() {
        let mut m = toy_model();
        m.subtrees[0].leaf_targets[1] = LeafTarget::Next { sid: 9, fallback: 0 };
        assert!(m.validate().is_err());
        let mut m = toy_model();
        m.subtrees[0].leaf_targets[0] = LeafTarget::Class(99);
        assert!(m.validate().is_err());
    }
}
