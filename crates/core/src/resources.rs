//! Analytic resource estimation and feasibility testing (paper §3.2.1,
//! "Resource Estimation and Feasibility Testing").
//!
//! The paper estimates TCAM blocks, register space and pipeline stages
//! with a target-specific analytical model (theirs wraps BF-SDE/P4Insight;
//! ours wraps [`splidt_dataplane::resources::TargetSpec`]) and feeds the
//! verdict back into the design search. Capacity intuition: per-flow
//! stateful state is `k` feature slots + reserved registers (SID, packet
//! and window counters) + shared dependency-chain registers; the SRAM the
//! target can dedicate to register arrays divides by that per-flow footprint
//! to give the supported flow count.

use crate::model::PartitionedTree;
use splidt_dataplane::resources::TargetSpec;
use splidt_flow::features::{catalog, DepRegister};
use std::collections::BTreeSet;

/// Summary statistics of a model relevant to resource fitting — extracted
/// from a [`PartitionedTree`] or constructed directly for baselines.
#[derive(Debug, Clone)]
pub struct ModelFootprint {
    /// Feature slots per flow (SpliDT: `k`; top-k baselines: `k` global).
    pub slots: usize,
    /// Bits per slot (32-bit cells at default precision; 16/8 when
    /// quantized — Figure 12).
    pub slot_bits: usize,
    /// Distinct dependency-chain registers (32-bit each, per flow).
    pub dep_registers: usize,
    /// Reserved per-flow bits (SID + packet counter + window counter for
    /// SpliDT; phase state for NetBeacon; counters for Leo).
    pub reserved_bits: usize,
    /// Per-flow bits of the flow-state lifecycle's ownership lane
    /// (fingerprint ‖ last-seen ‖ decided) — what buys dynamic admission,
    /// idle eviction and slot recycling under churn. 0 for baselines that
    /// assume a statically pre-admitted flow set.
    pub lifecycle_bits: usize,
    /// Total installed TCAM entries (feature tables + model tables).
    pub tcam_entries: usize,
    /// Widest ternary key in bits (model table).
    pub max_key_bits: usize,
    /// Logical pipeline stages of control/compute/match logic.
    pub stages: usize,
}

/// Bits of the ownership-lane register per flow slot (64-bit cell).
pub const OWNER_LANE_BITS: usize = 64;

/// Bits of the per-slot pressure counter register (32-bit cell): the
/// suppressed-packet telemetry operators size `flow_slots` from.
pub const SLOT_PRESSURE_BITS: usize = 32;

/// Per-flow bits of the full lifecycle substrate: ownership lane +
/// pressure counter.
pub const LIFECYCLE_BITS: usize = OWNER_LANE_BITS + SLOT_PRESSURE_BITS;

impl ModelFootprint {
    /// Per-flow stateful bits (the capacity divisor).
    pub fn per_flow_bits(&self) -> u64 {
        (self.slots * self.slot_bits
            + self.dep_registers * 32
            + self.reserved_bits
            + self.lifecycle_bits) as u64
    }

    /// The paper's Table 3 "Register Size (bits)" metric: feature-slot
    /// bits per flow.
    pub fn feature_register_bits(&self) -> usize {
        self.slots * self.slot_bits
    }
}

/// Derives the footprint of a SpliDT partitioned tree.
pub fn splidt_footprint(model: &PartitionedTree) -> ModelFootprint {
    let cat = catalog();
    // Dependency registers: union over all subtrees' slot programs.
    let mut deps: BTreeSet<DepRegister> = BTreeSet::new();
    for st in &model.subtrees {
        for f in st.features() {
            if let Some(p) = cat.slot_program(f) {
                deps.extend(p.deps());
            }
        }
    }
    let rules = crate::compile::model_rules(model);
    let slot_bits = slot_bits_for(model.config.feature_bits);
    ModelFootprint {
        slots: model.config.k,
        slot_bits,
        dep_registers: deps.len(),
        // SID (8) + packet counter (24) + window counter (16).
        reserved_bits: 48,
        lifecycle_bits: LIFECYCLE_BITS,
        tcam_entries: rules.tcam_entries,
        max_key_bits: rules.model_key_bits,
        // hash/dir + ownership lane + lifecycle + state + deps + compute
        // + slot stages + load + keygen + model ≈ 9 + ceil(k / 8).
        stages: 9 + model.config.k.div_ceil(8),
    }
}

/// Rounds feature precision to the register cell width it occupies.
pub fn slot_bits_for(feature_bits: u8) -> usize {
    match feature_bits {
        0..=8 => 8,
        9..=16 => 16,
        _ => 32,
    }
}

/// Physical host-side layout of the flow bank backing a footprint's
/// per-flow registers (see `splidt_dataplane::register::FlowBank`).
///
/// This is deliberately separate from [`ModelFootprint::per_flow_bits`]
/// and [`estimate`]: the Tofino feasibility model keeps attributing each
/// logical register to its pipeline stage (the hardware has per-stage
/// SRAM, not a coalesced arena), while this struct answers the software
/// data-plane question — how many cache lines one flow's state occupies
/// and how large the arena grows at a given slot count. One line per
/// flow means the wave executor issues ONE prefetch per packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankPhysical {
    /// Packed state bytes per flow slot (cells padded to 1/2/4/8-byte
    /// physical widths, packed descending so natural alignment adds no
    /// interior padding).
    pub cell_bytes_per_flow: usize,
    /// Bank stride: `cell_bytes_per_flow` rounded up to a whole number
    /// of cache lines — the per-slot pitch of the arena.
    pub stride_bytes: usize,
    /// Cache lines one flow's state spans (1 for ≤64 B, 2 beyond).
    pub lines_per_flow: usize,
}

impl BankPhysical {
    /// Arena size at `flow_slots` slots.
    pub fn arena_bytes(&self, flow_slots: usize) -> usize {
        self.stride_bytes * flow_slots
    }
}

/// Derives the physical bank layout the compiled pipeline materializes
/// for `fp` — mirroring the compiler's register emission: ownership lane
/// (64 b), pressure counter (32 b), SID (8 b), packet counter (24 b),
/// window counter (16 b), one 32-bit cell per dependency register, and
/// `k` feature-slot cells at the quantized width.
pub fn bank_physical(fp: &ModelFootprint) -> BankPhysical {
    use splidt_dataplane::register::{bank_cell_bytes, BANK_LINE_BYTES};
    let mut bytes = 0usize;
    if fp.lifecycle_bits >= OWNER_LANE_BITS {
        bytes += bank_cell_bytes(64); // r.owner
    }
    if fp.lifecycle_bits >= LIFECYCLE_BITS {
        bytes += bank_cell_bytes(32); // r.pressure
    }
    if fp.reserved_bits > 0 {
        // SID (8) + packet counter (24) + window counter (16); other
        // reserve shapes (baseline phase state) pack as 8-bit cells.
        if fp.reserved_bits == 48 {
            bytes += bank_cell_bytes(8) + bank_cell_bytes(24) + bank_cell_bytes(16);
        } else {
            bytes += fp.reserved_bits.div_ceil(8);
        }
    }
    bytes += fp.dep_registers * bank_cell_bytes(32);
    bytes += fp.slots * bank_cell_bytes(fp.slot_bits as u8);
    let stride_bytes = bytes.next_multiple_of(BANK_LINE_BYTES).max(BANK_LINE_BYTES);
    BankPhysical {
        cell_bytes_per_flow: bytes,
        stride_bytes,
        lines_per_flow: stride_bytes / BANK_LINE_BYTES,
    }
}

/// Resource estimate of a model at a given flow count.
#[derive(Debug, Clone)]
pub struct Estimate {
    /// Stateful SRAM bits for `n_flows` flows.
    pub state_bits: u64,
    /// SRAM bits the target can devote to register arrays.
    pub state_budget_bits: u64,
    /// TCAM blocks needed.
    pub tcam_blocks: usize,
    /// TCAM blocks available.
    pub tcam_budget_blocks: usize,
    /// Pipeline stages needed.
    pub stages: usize,
    /// Violations (empty = feasible).
    pub violations: Vec<String>,
}

impl Estimate {
    /// Whether the model fits.
    pub fn feasible(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Fraction of a pipe's stages whose SRAM can host register arrays (the
/// remainder is reserved for match logic / action memories). Chosen so the
/// classic anchors hold on Tofino1: k = 2 ⇒ ≈1 M flows, k = 6 ⇒ a few
/// hundred K (paper footnote 1 and Table 3's register-size rows).
pub const REGISTER_STAGE_FRACTION: f64 = 0.67;

/// Estimates resource usage of a footprint at `n_flows` on `target`.
pub fn estimate(fp: &ModelFootprint, target: &TargetSpec, n_flows: u64) -> Estimate {
    let mut violations = Vec::new();
    let state_bits = fp.per_flow_bits() * n_flows;
    let state_budget_bits =
        (target.total_sram_bits() as f64 * REGISTER_STAGE_FRACTION * target.pipes as f64) as u64;
    if state_bits > state_budget_bits {
        violations.push(format!(
            "stateful SRAM: {state_bits} bits exceed register budget {state_budget_bits}"
        ));
    }
    let tcam_blocks =
        target.tcam_blocks_for_ternary(fp.tcam_entries.max(1), fp.max_key_bits.max(8));
    let tcam_budget_blocks = target.n_stages * target.tcam_blocks_per_stage;
    if tcam_blocks > tcam_budget_blocks {
        violations.push(format!("TCAM: {tcam_blocks} blocks exceed budget {tcam_budget_blocks}"));
    }
    if fp.stages > target.n_stages {
        violations.push(format!("stages: {} exceed target {}", fp.stages, target.n_stages));
    }
    if fp.max_key_bits > target.max_key_bits {
        violations.push(format!(
            "key width: {} bits exceed max {}",
            fp.max_key_bits, target.max_key_bits
        ));
    }
    Estimate {
        state_bits,
        state_budget_bits,
        tcam_blocks,
        tcam_budget_blocks,
        stages: fp.stages,
        violations,
    }
}

/// Maximum concurrent flows the footprint supports on `target` (0 when
/// even one flow does not fit).
pub fn max_flows(fp: &ModelFootprint, target: &TargetSpec) -> u64 {
    if !estimate(fp, target, 1).feasible() {
        return 0;
    }
    let budget =
        (target.total_sram_bits() as f64 * REGISTER_STAGE_FRACTION * target.pipes as f64) as u64;
    budget / fp.per_flow_bits()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(k: usize, slot_bits: usize) -> ModelFootprint {
        ModelFootprint {
            slots: k,
            slot_bits,
            dep_registers: 1,
            reserved_bits: 48,
            lifecycle_bits: LIFECYCLE_BITS,
            tcam_entries: 2000,
            max_key_bits: 100,
            stages: 10,
        }
    }

    #[test]
    fn per_flow_bits_math() {
        let f = fp(4, 32);
        assert_eq!(f.per_flow_bits(), (4 * 32 + 32 + 48 + 96) as u64);
        assert_eq!(f.feature_register_bits(), 128);
    }

    #[test]
    fn capacity_anchors_on_tofino1() {
        let t = TargetSpec::tofino1();
        // k = 2: high hundreds of K (the paper's 1M-flow rows predate the
        // 64-bit ownership lane each flow now carries for churn support).
        let m2 = max_flows(&fp(2, 32), &t);
        assert!((450_000..1_500_000).contains(&m2), "k=2 capacity {m2}");
        // k = 6: several hundred K (paper reports ~65K–200K for one-shot
        // models which also pin *all* phases simultaneously).
        let m6 = max_flows(&fp(6, 32), &t);
        assert!(m6 < m2, "capacity must fall with k");
        // halving precision raises capacity (Figure 12); the gain is well
        // below 2× because reserved/dependency/lifecycle overhead is
        // unaffected by feature precision.
        let m2_16 = max_flows(&fp(2, 16), &t);
        assert!(m2_16 as f64 > m2 as f64 * 1.1, "16-bit {m2_16} vs 32-bit {m2}");
    }

    #[test]
    fn infeasible_when_too_many_stages() {
        let t = TargetSpec::tofino1();
        let mut f = fp(4, 32);
        f.stages = 20;
        assert_eq!(max_flows(&f, &t), 0);
        assert!(!estimate(&f, &t, 1).feasible());
    }

    #[test]
    fn tcam_violation_detected() {
        let t = TargetSpec::tofino1();
        let mut f = fp(4, 32);
        f.tcam_entries = 10_000_000;
        let e = estimate(&f, &t, 1000);
        assert!(!e.feasible());
        assert!(e.violations.iter().any(|v| v.contains("TCAM")));
    }

    #[test]
    fn bank_physical_one_line_at_default_k() {
        // owner 8 + pressure 4 + sid 1 + pkt 4 + win 2 + dep 4 + 4×4 = 39 B.
        let b = bank_physical(&fp(4, 32));
        assert_eq!(b.cell_bytes_per_flow, 39);
        assert_eq!(b.stride_bytes, 64);
        assert_eq!(b.lines_per_flow, 1);
        assert_eq!(b.arena_bytes(1 << 21), 64 << 21);
    }

    #[test]
    fn bank_physical_spills_to_two_lines_at_high_k() {
        // Same fixed 23 B overhead + 16×4 = 87 B → two lines.
        let b = bank_physical(&fp(16, 32));
        assert_eq!(b.cell_bytes_per_flow, 87);
        assert_eq!(b.stride_bytes, 128);
        assert_eq!(b.lines_per_flow, 2);
        // Quantizing to 8-bit features pulls it back under one line.
        assert_eq!(bank_physical(&fp(16, 8)).lines_per_flow, 1);
    }

    #[test]
    fn bank_physical_is_independent_of_logical_attribution() {
        // The Tofino estimate divides bits across stages; the bank packs
        // bytes. Changing feasibility inputs that don't add registers
        // (key width, TCAM entries, stages) must not move the layout.
        let mut f = fp(4, 32);
        let before = bank_physical(&f);
        f.tcam_entries = 1_000_000;
        f.max_key_bits = 600;
        f.stages = 20;
        assert_eq!(bank_physical(&f), before);
    }

    #[test]
    fn smartnic_supports_fewer_flows() {
        let f = fp(4, 32);
        let big = max_flows(&f, &TargetSpec::tofino1());
        let small = max_flows(&f, &TargetSpec::smartnic_dpu());
        assert!(small < big);
    }
}
