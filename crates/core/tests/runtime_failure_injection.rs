//! Failure injection on the data-plane runtime: register-slot collisions,
//! heavy interleaving, and tiny flows.

use splidt_core::runtime::canonical_flow_index;
use splidt_core::{run_flows, train_partitioned, SplidtConfig};
use splidt_flow::{
    catalog, generate, select_flows, spec, stratified_split, windowed_dataset, DatasetId,
};

#[test]
fn hash_collisions_are_detected_and_skipped() {
    let id = DatasetId::D2;
    let nc = spec(id).n_classes as usize;
    let flows = generate(id, 300, 13);
    let (tr, te) = stratified_split(&flows, 0.3, 1);
    let train_flows = select_flows(&flows, &tr);
    let test_flows = select_flows(&flows, &te);
    let cfg = SplidtConfig { partitions: vec![2, 2], k: 3, ..Default::default() };
    let wd = windowed_dataset(&train_flows, 2, nc);
    let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
    // Absurdly small register space: 16 slots for ~90 flows ⇒ collisions
    // are guaranteed; the runtime must surface them, not mis-score.
    let report = run_flows(&model, &test_flows, 16, 1_000).unwrap();
    assert!(report.collisions_skipped > 0, "collisions must be detected");
    let kept = report.flows.len();
    assert_eq!(kept + report.collisions_skipped, test_flows.len());
    // kept flows still classify exactly like software
    for o in &report.flows {
        assert_eq!(o.predicted, Some(o.software));
    }
    // slot indices of kept flows are unique by construction
    let mut idxs: Vec<usize> =
        (0..test_flows.len()).map(|i| canonical_flow_index(&test_flows[i], 16)).collect();
    idxs.sort_unstable();
    idxs.dedup();
    assert!(idxs.len() <= 16);
}

#[test]
fn heavy_interleaving_still_exact() {
    // Very tight stagger: all flows effectively simultaneous — maximum
    // interleaving pressure on register-state separation.
    let id = DatasetId::D6;
    let nc = spec(id).n_classes as usize;
    let flows = generate(id, 160, 21);
    let (tr, te) = stratified_split(&flows, 0.3, 2);
    let train_flows = select_flows(&flows, &tr);
    let test_flows = select_flows(&flows, &te);
    let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
    let wd = windowed_dataset(&train_flows, 3, nc);
    let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
    let report = run_flows(&model, &test_flows, 1 << 16, 1).unwrap();
    assert!((report.software_agreement - 1.0).abs() < 1e-9, "interleaving broke state separation");
}
