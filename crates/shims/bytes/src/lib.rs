//! In-tree shim for the subset of the `bytes` API the workspace uses: a
//! growable byte buffer with network-order (big-endian) append methods.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer (a `Vec<u8>` wrapper mirroring `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap) }
    }

    /// Consumes the buffer into its backing vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.buf
    }
}

/// Append methods in network byte order (`bytes::BufMut` subset).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a big-endian u16.
    fn put_u16(&mut self, v: u16);
    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32);
    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64);
    /// Appends `count` copies of `byte`.
    fn put_bytes(&mut self, byte: u8, count: usize);
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_bytes(&mut self, byte: u8, count: usize) {
        self.resize(self.len() + count, byte);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
    fn put_bytes(&mut self, byte: u8, count: usize) {
        self.buf.resize(self.buf.len() + count, byte);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_layout() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16(0x0102);
        b.put_u32(0x03040506);
        b.put_slice(&[9, 9]);
        b.put_bytes(0, 3);
        assert_eq!(&b[..], &[0xAB, 1, 2, 3, 4, 5, 6, 9, 9, 0, 0, 0]);
        assert_eq!(b.len(), 12);
    }
}
