//! In-tree shim for the subset of the `criterion` API the workspace's
//! benches use: `Criterion`, `Bencher::iter`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Methodology is deliberately simple — warm up, then run timed batches
//! until a wall-clock budget is spent, and report mean time per iteration
//! (plus derived element throughput when declared). No statistics engine,
//! no HTML reports; swap in the real crate when a registry is reachable.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget per benchmark (override with `CRITERION_SHIM_MS`).
fn budget() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(500);
    Duration::from_millis(ms)
}

/// Benchmark identifier: a function name plus a parameter tag.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { name: format!("{}/{}", name.into(), parameter) }
    }

    /// Parameter-only id (group context supplies the name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { name: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Declared per-iteration work, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (e.g. packets) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs closures and accumulates timing.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` repeatedly until the budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (untimed).
        black_box(f());
        let budget = budget();
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget {
            black_box(f());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    group: Option<String>,
    throughput: Option<Throughput>,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl Criterion {
    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        f(&mut b);
        let per_iter = b.elapsed / (b.iters as u32).max(1);
        let full = match &self.group {
            Some(g) => format!("{g}/{name}"),
            None => name.to_string(),
        };
        let mut line =
            format!("{full:<48} {:>12}/iter ({} iters)", fmt_duration(per_iter), b.iters);
        if let Some(tp) = self.throughput {
            let per_sec = |n: u64| n as f64 * b.iters as f64 / b.elapsed.as_secs_f64();
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:.0} elem/s", per_sec(n)));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:.0} B/s", per_sec(n)));
                }
            }
        }
        println!("{line}");
    }

    /// Benchmarks a closure under `name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Benchmarks a closure parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(&id.to_string(), |b| f(b, input));
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), throughput: None }
    }
}

/// A named group sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Benchmarks a closure under this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        self.c.group = Some(self.name.clone());
        self.c.throughput = self.throughput;
        self.c.run_one(&id.to_string(), f);
        self.c.group = None;
        self.c.throughput = None;
        self
    }

    /// Benchmarks a closure parameterized by `input` under this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Declares a benchmark group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
