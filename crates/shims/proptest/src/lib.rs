//! In-tree shim for the subset of the `proptest` API the workspace's
//! property tests use: range / `any` / tuple / mapped / vec strategies, the
//! `proptest!` test-block macro, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Sampling is plain seeded-random (no shrinking, no persistence): each
//! `#[test]` inside `proptest!` runs `PROPTEST_CASES` (default 48) cases
//! from a fixed seed, so failures are reproducible run-to-run. Failure
//! messages include the case index; re-running the test binary reproduces
//! the same inputs deterministically.

use rand::rngs::SmallRng;
use rand::{Rng, SampleUniform, SeedableRng};
use std::ops::Range;

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// Number of cases per property (env `PROPTEST_CASES`, default 48).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(48)
}

/// Deterministic per-test RNG.
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the test name so distinct properties get distinct
    // (but stable) streams.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    SmallRng::seed_from_u64(h)
}

/// A value generator.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<T: SampleUniform + rand::One> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

/// A constant strategy (`proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Full-domain values for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Draws one value from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.random::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// `any::<T>()` — samples the full domain of `T`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn sample(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// `vec(element, len_range)` — vectors of sampled length.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// One-stop imports, as in real proptest.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Just, Strategy};
}

/// `assert!` that reports the failing case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// `assert_eq!` that reports the failing case index.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// `assert_ne!` counterpart.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Declares property tests: each inner `fn` runs [`cases`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let mut __rng = $crate::rng_for(stringify!($name));
            for __case in 0..$crate::cases() {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(a in 1u32..10, (b, c) in (0u8..4, any::<bool>())) {
            prop_assert!((1..10).contains(&a));
            prop_assert!(b < 4, "b = {b}, c = {c}");
        }

        #[test]
        fn mapped_vecs(v in crate::collection::vec(0u64..100, 1..8).prop_map(|mut v| { v.sort_unstable(); v })) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
