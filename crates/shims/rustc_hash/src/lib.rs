//! In-tree shim for the subset of the `rustc-hash` API the workspace uses:
//! [`FxHasher`], [`FxBuildHasher`], and the [`FxHashMap`]/[`FxHashSet`]
//! aliases.
//!
//! FxHash is the multiply-fold hash rustc uses for its interner tables: a
//! single wrapping multiply and rotate per word, no per-process random
//! state. It is **not** DoS-resistant — exactly the trade the compiled
//! match indexes want, since table contents are installed by the control
//! plane at compile time, not by adversarial packets, and lookup latency
//! is the whole point. The constant is the golden-ratio multiplier from
//! the upstream crate.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// 2^64 / φ, the Fibonacci-hashing multiplier upstream uses.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash streaming hasher: fold each word in with a rotate, xor and
/// wrapping multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Stateless [`BuildHasher`] producing [`FxHasher`]s.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed with FxHash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with FxHash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trip() {
        let mut m: FxHashMap<u128, u32> = FxHashMap::default();
        for i in 0..1000u128 {
            m.insert(i << 17, i as u32);
        }
        for i in 0..1000u128 {
            assert_eq!(m.get(&(i << 17)), Some(&(i as u32)));
        }
        assert_eq!(m.get(&1), None);
    }

    #[test]
    fn slice_keys_borrow() {
        // `Vec<u64>` keys must be queryable by `&[u64]` (the wide exact
        // path looks up with the reusable key scratch).
        let mut m: FxHashMap<Vec<u64>, u32> = FxHashMap::default();
        m.insert(vec![1, 2, 3], 7);
        let probe: &[u64] = &[1, 2, 3];
        assert_eq!(m.get(probe), Some(&7));
    }

    #[test]
    fn deterministic_across_hashers() {
        let h = |n: u64| {
            let mut h = FxHasher::default();
            h.write_u64(n);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn hashes_unaligned_tails() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12]);
        assert_ne!(a.finish(), b.finish());
    }
}
