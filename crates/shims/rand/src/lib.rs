//! In-tree shim for the subset of the `rand` 0.9 API the workspace uses.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, deterministic implementation: a
//! xoshiro256++ generator seeded via SplitMix64 (the same construction the
//! real `SmallRng` uses on 64-bit targets), the `Rng`/`SeedableRng` traits
//! with `random`/`random_range`, and `seq::SliceRandom::shuffle`.
//!
//! Streams differ from the real crate, which is fine here: every consumer
//! seeds explicitly and asserts statistical properties, not exact values.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types producible by [`Rng::random`] (the `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[lo, hi]` (inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + <f64 as Standard>::sample(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + <f32 as Standard>::sample(rng) * (hi - lo)
    }
}

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_inclusive(rng, self.start, T::step_down(self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Helper to turn an exclusive upper bound into an inclusive one.
pub trait One: Sized + Copy {
    /// `end - 1` for integers; identity for floats (half-open floats keep
    /// the bound, matching the real crate's behaviour closely enough).
    fn step_down(self) -> Self;
}

macro_rules! impl_one_int {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn step_down(self) -> Self { self - 1 }
        }
    )*};
}
impl_one_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl One for f64 {
    fn step_down(self) -> Self {
        self
    }
}

impl One for f32 {
    fn step_down(self) -> Self {
        self
    }
}

/// High-level generator methods (the `rand::Rng` extension trait).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    fn random_range<T, B>(&mut self, range: B) -> T
    where
        Self: Sized,
        T: SampleUniform,
        B: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Explicitly-seedable generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64 — a small, fast, high-quality
    /// non-cryptographic generator (the construction real `SmallRng` uses).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice extension methods.
pub mod seq {
    use super::RngCore;

    /// In-place shuffling (`rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.random_range(3u32..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let w = rng.random_range(5usize..=5);
            assert_eq!(w, 5);
            let x = rng.random_range(-4i32..5);
            assert!((-4..5).contains(&x));
        }
    }

    #[test]
    fn uniformish_and_shuffle_preserves_elements() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {c}");
        }
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        assert_ne!(v, (0..100).collect::<Vec<_>>());
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }
}
