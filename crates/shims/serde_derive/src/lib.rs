//! No-op `Serialize`/`Deserialize` derives.
//!
//! The workspace annotates model/flow types with serde derives so they are
//! serialization-ready, but nothing in-tree serializes yet and the build
//! environment cannot fetch the real `serde`. These derives accept the
//! attribute grammar and emit nothing; swap in the real crates by deleting
//! the `crates/shims/serde*` entries from the workspace `[patch]`-free
//! path deps once a registry is reachable.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` attributes) and
/// expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
