//! In-tree shim for `serde`: re-exports the no-op derives so
//! `use serde::{Deserialize, Serialize}` and `#[derive(Serialize,
//! Deserialize)]` compile without the real crate. See
//! `crates/shims/serde_derive` for the rationale.

pub use serde_derive::{Deserialize, Serialize};
