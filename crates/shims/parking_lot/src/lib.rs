//! In-tree shim for `parking_lot`: `Mutex`/`RwLock` wrappers over their
//! `std::sync` counterparts exposing the poison-free `lock()` signature.
//! Poisoning is converted to a panic propagation (matching parking_lot's
//! behaviour of not poisoning at all closely enough for in-process use).

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards are returned directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        let rw = RwLock::new(7);
        assert_eq!(*rw.read(), 7);
        *rw.write() = 8;
        assert_eq!(*rw.read(), 8);
    }
}
