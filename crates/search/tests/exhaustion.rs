//! Regression test: searches over spaces with fewer distinct
//! configurations than the candidate-pool size must terminate.

use splidt_search::{optimize, BoOptions, Objectives, ParamSpace};

#[test]
fn tiny_space_terminates() {
    // p fixed to 1, k fixed to 1: the whole space is the depth axis.
    let space = ParamSpace { partitions: (1, 1), k: (1, 1), depth: (2, 10), ..Default::default() };
    let eval = |cfg: &splidt_core::SplidtConfig| Objectives {
        f1: cfg.total_depth() as f64 / 20.0,
        max_flows: 1_000_000,
        feasible: true,
    };
    let res =
        optimize(&space, &eval, &BoOptions { budget: 64, batch: 8, init: 8, pool: 512, seed: 1 });
    // Cannot evaluate more configs than the space holds, and must finish.
    assert!(!res.history.is_empty());
    assert!(res.history.len() <= 64);
    assert!(res.iterations.last().unwrap().best_f1 > 0.0);
}
