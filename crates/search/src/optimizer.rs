//! Multi-objective Bayesian optimization (HyperMapper-style, paper §3.2.1).
//!
//! A random-forest surrogate per objective (F1, log-flows) plus a
//! feasibility forest; candidates are scored by an upper-confidence
//! acquisition under random Chebyshev scalarization — HyperMapper's recipe
//! for producing a Pareto *frontier* rather than a single optimum. Batches
//! evaluate in parallel on scoped threads (the paper runs 16 parallel
//! evaluations per iteration).

use crate::pareto::{pareto_front, Point};
use crate::space::ParamSpace;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use splidt_core::SplidtConfig;
use splidt_dt::{ForestParams, ForestRegressor};

/// Evaluation outcome of one configuration.
#[derive(Debug, Clone, Copy)]
pub struct Objectives {
    /// Test macro-F1.
    pub f1: f64,
    /// Maximum supported concurrent flows on the target.
    pub max_flows: u64,
    /// Whether the configuration is deployable at all.
    pub feasible: bool,
}

/// The black box the search optimizes (train + evaluate + fit-check).
pub trait Evaluator: Sync {
    /// Evaluates a configuration.
    fn evaluate(&self, cfg: &SplidtConfig) -> Objectives;
}

impl<F: Fn(&SplidtConfig) -> Objectives + Sync> Evaluator for F {
    fn evaluate(&self, cfg: &SplidtConfig) -> Objectives {
        self(cfg)
    }
}

/// Search options.
#[derive(Debug, Clone)]
pub struct BoOptions {
    /// Total evaluations (including the random-init phase).
    pub budget: usize,
    /// Parallel evaluations per iteration.
    pub batch: usize,
    /// Random-init evaluations before the surrogate takes over.
    pub init: usize,
    /// Candidate pool scored by the acquisition each iteration.
    pub pool: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BoOptions {
    fn default() -> Self {
        Self { budget: 64, batch: 8, init: 16, pool: 256, seed: 0 }
    }
}

/// Per-iteration progress (Figure 7's convergence data).
#[derive(Debug, Clone, Copy)]
pub struct IterStats {
    /// Evaluations consumed so far.
    pub evaluations: usize,
    /// Best feasible F1 so far.
    pub best_f1: f64,
}

/// Search result.
#[derive(Debug, Clone)]
pub struct BoResult {
    /// Every evaluated configuration with its objectives.
    pub history: Vec<(SplidtConfig, Objectives)>,
    /// Indices of the feasible Pareto-optimal entries.
    pub pareto: Vec<usize>,
    /// Convergence trace.
    pub iterations: Vec<IterStats>,
}

impl BoResult {
    /// Objective points of feasible history entries `(index, point)`.
    pub fn feasible_points(&self) -> Vec<(usize, Point)> {
        self.history
            .iter()
            .enumerate()
            .filter(|(_, (_, o))| o.feasible)
            .map(|(i, (_, o))| (i, Point { f1: o.f1, flows: o.max_flows as f64 }))
            .collect()
    }

    /// Best feasible F1 among configs supporting ≥ `min_flows`.
    pub fn best_at_flows(&self, min_flows: u64) -> Option<(usize, f64)> {
        self.history
            .iter()
            .enumerate()
            .filter(|(_, (_, o))| o.feasible && o.max_flows >= min_flows)
            .map(|(i, (_, o))| (i, o.f1))
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
    }
}

fn evaluate_batch<E: Evaluator>(
    evaluator: &E,
    batch: Vec<SplidtConfig>,
) -> Vec<(SplidtConfig, Objectives)> {
    let mut out: Vec<Option<(SplidtConfig, Objectives)>> = vec![None; batch.len()];
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (i, cfg) in batch.into_iter().enumerate() {
            handles.push(s.spawn(move || (i, cfg.clone(), evaluator.evaluate(&cfg))));
        }
        for h in handles {
            let (i, cfg, obj) = h.join().expect("evaluator panicked");
            out[i] = Some((cfg, obj));
        }
    });
    out.into_iter().flatten().collect()
}

/// Runs the search.
pub fn optimize<E: Evaluator>(space: &ParamSpace, evaluator: &E, opts: &BoOptions) -> BoResult {
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let mut history: Vec<(SplidtConfig, Objectives)> = Vec::new();
    let mut iterations = Vec::new();
    let mut seen: Vec<SplidtConfig> = Vec::new();

    let record = |hist: &Vec<(SplidtConfig, Objectives)>, iters: &mut Vec<IterStats>| {
        let best =
            hist.iter().filter(|(_, o)| o.feasible).map(|(_, o)| o.f1).fold(0.0f64, f64::max);
        iters.push(IterStats { evaluations: hist.len(), best_f1: best });
    };

    // --- random init (attempt-bounded: tiny spaces may hold fewer
    // distinct configs than requested)
    let mut init_batch = Vec::new();
    let mut attempts = 0usize;
    while init_batch.len() < opts.init.min(opts.budget) && attempts < opts.budget * 50 {
        attempts += 1;
        let c = space.sample(&mut rng);
        if !seen.contains(&c) {
            seen.push(c.clone());
            init_batch.push(c);
        }
    }
    history.extend(evaluate_batch(evaluator, init_batch));
    record(&history, &mut iterations);

    // --- BO iterations
    while history.len() < opts.budget {
        let (xs, f1s, flows, feas): (Vec<Vec<f64>>, Vec<f64>, Vec<f64>, Vec<f64>) = {
            let mut xs = Vec::new();
            let mut a = Vec::new();
            let mut b = Vec::new();
            let mut c = Vec::new();
            for (cfg, o) in &history {
                xs.push(space.encode(cfg));
                a.push(o.f1);
                b.push((o.max_flows.max(1) as f64).log2());
                c.push(if o.feasible { 1.0 } else { 0.0 });
            }
            (xs, a, b, c)
        };
        let dim = space.encoded_len();
        let flat: Vec<f64> = xs.iter().flatten().copied().collect();
        let fp = ForestParams {
            n_trees: 24,
            max_depth: 8,
            sample_frac: 0.9,
            seed: opts.seed,
            ..Default::default()
        };
        let sur_f1 = ForestRegressor::train(&flat, dim, &f1s, &fp);
        let sur_fl = ForestRegressor::train(&flat, dim, &flows, &fp);
        let sur_ok = ForestRegressor::train(&flat, dim, &feas, &fp);
        let max_log_flows = flows.iter().cloned().fold(1.0f64, f64::max);

        // candidate pool: random samples + neighbors of Pareto entries
        let mut pool = Vec::with_capacity(opts.pool);
        let pts: Vec<Point> = history
            .iter()
            .map(|(_, o)| Point {
                f1: if o.feasible { o.f1 } else { 0.0 },
                flows: o.max_flows as f64,
            })
            .collect();
        let front = pareto_front(&pts);
        // Constrained spaces can hold fewer distinct configs than the pool
        // size; bound the fill attempts so exhaustion terminates.
        let mut attempts = 0usize;
        while pool.len() < opts.pool && attempts < opts.pool * 30 {
            attempts += 1;
            let c = if !front.is_empty() && rng.random::<f64>() < 0.5 {
                let &i = &front[rng.random_range(0..front.len())];
                space.neighbor(&history[i].0, &mut rng)
            } else {
                space.sample(&mut rng)
            };
            if !seen.contains(&c) && !pool.contains(&c) {
                pool.push(c);
            }
        }

        // random Chebyshev scalarization + UCB acquisition, feasibility-
        // weighted
        let lambda: f64 = rng.random();
        let beta = 1.0;
        let mut scored: Vec<(f64, SplidtConfig)> = pool
            .into_iter()
            .map(|c| {
                let x = space.encode(&c);
                let (m1, v1) = sur_f1.predict(&x);
                let (m2, v2) = sur_fl.predict(&x);
                let (ok, _) = sur_ok.predict(&x);
                let o1 = m1 + beta * v1.sqrt();
                let o2 = (m2 + beta * v2.sqrt()) / max_log_flows.max(1.0);
                let scal = (lambda * o1).min((1.0 - lambda) * o2);
                (scal * ok.clamp(0.05, 1.0), c)
            })
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
        let take = opts.batch.min(opts.budget - history.len());
        let batch: Vec<SplidtConfig> = scored.into_iter().take(take).map(|(_, c)| c).collect();
        if batch.is_empty() {
            break;
        }
        seen.extend(batch.iter().cloned());
        history.extend(evaluate_batch(evaluator, batch));
        record(&history, &mut iterations);
    }

    let pts: Vec<Point> = history
        .iter()
        .map(|(_, o)| Point { f1: if o.feasible { o.f1 } else { -1.0 }, flows: o.max_flows as f64 })
        .collect();
    let pareto = pareto_front(&pts).into_iter().filter(|&i| history[i].1.feasible).collect();
    BoResult { history, pareto, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic landscape: F1 rises with depth and k but "hardware"
    /// capacity falls with k; feasibility requires depth ≤ 20.
    fn toy_eval(cfg: &SplidtConfig) -> Objectives {
        let d = cfg.total_depth() as f64;
        let k = cfg.k as f64;
        let p = cfg.partitions.len() as f64;
        let f1 = (0.3f64 + 0.02 * d + 0.05 * k - 0.01 * (p - 3.0).abs()).min(0.95);
        let max_flows = (2_000_000.0 / (k * 32.0 + 80.0) * 64.0) as u64;
        Objectives { f1, max_flows, feasible: cfg.total_depth() <= 20 }
    }

    #[test]
    fn finds_good_configs() {
        let space = ParamSpace::default();
        let opts = BoOptions { budget: 48, batch: 6, init: 12, pool: 128, seed: 1 };
        let res = optimize(&space, &toy_eval, &opts);
        assert_eq!(res.history.len(), 48);
        assert!(!res.pareto.is_empty());
        let best = res.iterations.last().unwrap().best_f1;
        assert!(best > 0.8, "best {best}");
        // convergence trace is monotone
        for w in res.iterations.windows(2) {
            assert!(w[1].best_f1 >= w[0].best_f1);
        }
    }

    #[test]
    fn pareto_entries_are_feasible() {
        let space = ParamSpace::default();
        let res =
            optimize(&space, &toy_eval, &BoOptions { budget: 32, seed: 2, ..Default::default() });
        for &i in &res.pareto {
            assert!(res.history[i].1.feasible);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let space = ParamSpace::default();
        let opts = BoOptions { budget: 24, seed: 3, ..Default::default() };
        let a = optimize(&space, &toy_eval, &opts);
        let b = optimize(&space, &toy_eval, &opts);
        let fa: Vec<_> = a.history.iter().map(|(c, _)| c.clone()).collect();
        let fb: Vec<_> = b.history.iter().map(|(c, _)| c.clone()).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn best_at_flows_filters() {
        let space = ParamSpace::default();
        let res =
            optimize(&space, &toy_eval, &BoOptions { budget: 32, seed: 4, ..Default::default() });
        if let Some((_, f1_small)) = res.best_at_flows(100_000) {
            if let Some((_, f1_big)) = res.best_at_flows(400_000) {
                assert!(f1_big <= f1_small + 1e-9, "bigger flow targets can't do better");
            }
        }
    }
}
