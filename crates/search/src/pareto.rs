//! Pareto-dominance utilities for the (F1 ↑, flows ↑) bi-objective space.

/// A point in objective space (both maximized).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Model accuracy (macro-F1).
    pub f1: f64,
    /// Supported concurrent flows.
    pub flows: f64,
}

/// True when `a` dominates `b` (≥ on both, > on at least one).
pub fn dominates(a: Point, b: Point) -> bool {
    a.f1 >= b.f1 && a.flows >= b.flows && (a.f1 > b.f1 || a.flows > b.flows)
}

/// Indices of the non-dominated points.
pub fn pareto_front(points: &[Point]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, &p) in points.iter().enumerate() {
        for (j, &q) in points.iter().enumerate() {
            if i != j && (dominates(q, p) || (q == p && j < i)) {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

/// 2-D hypervolume dominated by the front w.r.t. a reference point
/// `(ref_f1, ref_flows)` (both below/left of all points).
pub fn hypervolume(points: &[Point], ref_f1: f64, ref_flows: f64) -> f64 {
    let front = pareto_front(points);
    let mut pts: Vec<Point> = front.iter().map(|&i| points[i]).collect();
    // sort by flows ascending; sweep adds rectangles
    pts.sort_by(|a, b| a.flows.partial_cmp(&b.flows).expect("finite"));
    let mut hv = 0.0;
    let mut prev_flows = ref_flows;
    // iterate flows ascending but accumulate from the highest-f1 (lowest
    // flows) side: with both maximized, f1 decreases as flows increases on
    // a front.
    for p in &pts {
        let width = (p.flows - prev_flows).max(0.0);
        let height = (p.f1 - ref_f1).max(0.0);
        hv += width * height;
        prev_flows = p.flows.max(prev_flows);
    }
    hv
}

/// The best F1 among points supporting at least `min_flows`.
pub fn best_f1_at(points: &[Point], min_flows: f64) -> Option<f64> {
    points
        .iter()
        .filter(|p| p.flows >= min_flows)
        .map(|p| p.f1)
        .max_by(|a, b| a.partial_cmp(b).expect("finite"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts() -> Vec<Point> {
        vec![
            Point { f1: 0.9, flows: 1e5 },
            Point { f1: 0.8, flows: 5e5 },
            Point { f1: 0.7, flows: 1e6 },
            Point { f1: 0.6, flows: 5e5 },  // dominated by #1
            Point { f1: 0.85, flows: 9e4 }, // dominated by #0
        ]
    }

    #[test]
    fn dominance() {
        let p = pts();
        assert!(dominates(p[1], p[3]));
        assert!(!dominates(p[3], p[1]));
        assert!(!dominates(p[0], p[2]));
    }

    #[test]
    fn front_extraction() {
        assert_eq!(pareto_front(&pts()), vec![0, 1, 2]);
    }

    #[test]
    fn duplicate_points_keep_one() {
        let p = vec![Point { f1: 0.5, flows: 1.0 }, Point { f1: 0.5, flows: 1.0 }];
        assert_eq!(pareto_front(&p), vec![0]);
    }

    #[test]
    fn hypervolume_monotone_in_points() {
        let mut p = pts();
        let hv1 = hypervolume(&p, 0.0, 0.0);
        p.push(Point { f1: 0.95, flows: 2e6 }); // dominates everything
        let hv2 = hypervolume(&p, 0.0, 0.0);
        assert!(hv2 > hv1);
    }

    #[test]
    fn best_f1_at_flow_levels() {
        let p = pts();
        assert_eq!(best_f1_at(&p, 1e6), Some(0.7));
        assert_eq!(best_f1_at(&p, 2e5), Some(0.8));
        assert_eq!(best_f1_at(&p, 1e7), None);
    }
}
