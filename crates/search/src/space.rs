//! The SpliDT design-search parameter space (paper §3.2.1): total depth
//! `D`, features per subtree `k`, and the partition-size vector
//! `[i1, …, ip]` with `Σ i_j = D`.

use rand::rngs::SmallRng;
use rand::Rng;
use splidt_core::SplidtConfig;

/// Bounds of the configuration space.
#[derive(Debug, Clone)]
pub struct ParamSpace {
    /// Tree depth range (total `D`).
    pub depth: (usize, usize),
    /// Features-per-subtree range (`k`).
    pub k: (usize, usize),
    /// Partition count range (`p`).
    pub partitions: (usize, usize),
    /// Feature precision (bits) — fixed per search.
    pub feature_bits: u8,
}

impl Default for ParamSpace {
    fn default() -> Self {
        Self { depth: (2, 24), k: (1, 7), partitions: (1, 7), feature_bits: 24 }
    }
}

impl ParamSpace {
    /// Dimensionality of the surrogate encoding.
    pub fn encoded_len(&self) -> usize {
        3 + self.partitions.1
    }

    /// Samples a random valid configuration.
    pub fn sample(&self, rng: &mut SmallRng) -> SplidtConfig {
        let p = rng.random_range(self.partitions.0..=self.partitions.1);
        let k = rng.random_range(self.k.0..=self.k.1);
        let d_lo = self.depth.0.max(p);
        let d_hi = self.depth.1.max(d_lo);
        let d = rng.random_range(d_lo..=d_hi);
        // random composition of d into p positive parts
        let mut parts = vec![1usize; p];
        let mut rest = d - p;
        while rest > 0 {
            let i = rng.random_range(0..p);
            parts[i] += 1;
            rest -= 1;
        }
        SplidtConfig {
            partitions: parts,
            k,
            feature_bits: self.feature_bits,
            ..SplidtConfig::default()
        }
    }

    /// Encodes a configuration for the random-forest surrogate:
    /// `[D, k, p, i1 … i_pmax]` (missing partitions zero-padded).
    pub fn encode(&self, cfg: &SplidtConfig) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.encoded_len());
        v.push(cfg.total_depth() as f64);
        v.push(cfg.k as f64);
        v.push(cfg.partitions.len() as f64);
        for i in 0..self.partitions.1 {
            v.push(cfg.partitions.get(i).copied().unwrap_or(0) as f64);
        }
        v
    }

    /// A mutation of `cfg` (local move for acquisition sampling).
    pub fn neighbor(&self, cfg: &SplidtConfig, rng: &mut SmallRng) -> SplidtConfig {
        let mut c = cfg.clone();
        match rng.random_range(0..4u32) {
            0 => {
                // bump k
                let dk: i64 = if rng.random::<bool>() { 1 } else { -1 };
                c.k = (c.k as i64 + dk).clamp(self.k.0 as i64, self.k.1 as i64) as usize;
            }
            1 => {
                // bump one partition's depth
                let i = rng.random_range(0..c.partitions.len());
                let dd: i64 = if rng.random::<bool>() { 1 } else { -1 };
                let nd = (c.partitions[i] as i64 + dd).max(1) as usize;
                if c.total_depth() - c.partitions[i] + nd <= self.depth.1 {
                    c.partitions[i] = nd;
                }
            }
            2 => {
                // add a partition
                if c.partitions.len() < self.partitions.1 && c.total_depth() < self.depth.1 {
                    c.partitions.push(1);
                }
            }
            _ => {
                // drop a partition
                if c.partitions.len() > self.partitions.0.max(1) {
                    c.partitions.pop();
                }
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn samples_are_valid() {
        let s = ParamSpace::default();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..200 {
            let c = s.sample(&mut rng);
            assert!(c.validate().is_ok(), "{c:?}");
            assert!(c.total_depth() >= c.partitions.len());
            assert!(c.total_depth() <= 24);
            assert!((1..=7).contains(&c.k));
            assert!((1..=7).contains(&c.partitions.len()));
        }
    }

    #[test]
    fn encoding_shape() {
        let s = ParamSpace::default();
        let mut rng = SmallRng::seed_from_u64(2);
        let c = s.sample(&mut rng);
        let e = s.encode(&c);
        assert_eq!(e.len(), s.encoded_len());
        assert_eq!(e[0], c.total_depth() as f64);
        assert_eq!(e[1], c.k as f64);
    }

    #[test]
    fn neighbors_stay_valid() {
        let s = ParamSpace::default();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut c = s.sample(&mut rng);
        for _ in 0..300 {
            c = s.neighbor(&c, &mut rng);
            assert!(c.validate().is_ok(), "{c:?}");
            assert!(c.total_depth() <= 24 + 1); // +1 slack from add-partition
        }
    }
}
