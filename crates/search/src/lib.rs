//! # splidt-search — design-space exploration for SpliDT
//!
//! A HyperMapper-style multi-objective Bayesian-optimization framework
//! (paper §3.2.1 / Figure 5): random-forest surrogates, feasibility
//! filtering, random Chebyshev scalarization, parallel batch evaluation —
//! producing the Pareto frontier of (F1, supported flows) configurations.

pub mod optimizer;
pub mod pareto;
pub mod space;

pub use optimizer::{optimize, BoOptions, BoResult, Evaluator, IterStats, Objectives};
pub use pareto::{best_f1_at, dominates, hypervolume, pareto_front, Point};
pub use space::ParamSpace;
