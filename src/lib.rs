//! # splidt — partitioned decision trees for scalable stateful inference
//!
//! A complete Rust reproduction of **SpliDT** (SIGCOMM 2025,
//! [arXiv:2509.00397](https://arxiv.org/abs/2509.00397)): in-network
//! decision-tree classification that scales the number of *stateful*
//! features a model can use by splitting the tree into partitions, giving
//! each subtree its own feature set, and reusing the switch's registers
//! and match keys across partitions via packet recirculation.
//!
//! This facade re-exports the workspace crates:
//!
//! | crate | role |
//! |---|---|
//! | [`core`] | the partitioned model, Algorithm-1 training, pipeline compiler, the streaming [`engine`], resource models, baselines |
//! | [`dataplane`] | Tofino1-class RMT pipeline simulator |
//! | [`flow`] | traffic substrate: flows, window features, D1–D7 dataset analogs, datacenter workloads |
//! | [`net`] | network ingress: UDP/pcap frame sources, per-shard bounded rings with backpressure, loopback traffic generator |
//! | [`dt`] | decision trees (CART with feature budgets), forests, metrics |
//! | [`ranging`] | the Range-Marking TCAM encoding |
//! | [`search`] | multi-objective Bayesian-optimization design search |
//!
//! ## Quickstart
//!
//! The canonical entry point is the streaming engine: train a model (any
//! [`Classifier`](engine::Classifier) backend), compile it **once** with
//! [`EngineBuilder`](engine::EngineBuilder), then feed traffic and collect
//! verdicts — batched here; incrementally via
//! [`Engine::ingest`](engine::Engine::ingest) when driving live frames.
//!
//! ```
//! use splidt::prelude::*;
//!
//! // 1. a labelled traffic dataset (synthetic CIC-IoT analog)
//! let flows = generate(DatasetId::D2, 400, 7);
//! let (tr, te) = stratified_split(&flows, 0.3, 1);
//! let train_flows = select_flows(&flows, &tr);
//! let test_flows = select_flows(&flows, &te);
//!
//! // 2. train a partitioned tree through the uniform fit() entry point:
//! //    3 partitions of depth 2, 4 feature slots per subtree
//! let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
//! let model = PartitionedTree::fit(&train_flows, 4, &cfg).unwrap();
//!
//! // 3. compile once, stream the test flows through the data plane, and
//! //    check the digests against software inference
//! let mut engine = EngineBuilder::new(&model).flow_slots(1 << 16).build().unwrap();
//! let report = engine.run(&test_flows).unwrap();
//! assert!((report.software_agreement - 1.0).abs() < 1e-9);
//!
//! // 4. the same compiled engine serves the next session
//! engine.reset();
//! let again = engine.run(&test_flows).unwrap();
//! assert_eq!(report.flows, again.flows);
//! ```
//!
//! To scale throughput across cores, swap `build()` for
//! `build_sharded(n)`: a [`ShardedEngine`](engine::ShardedEngine)
//! partitions flows across `n` independent pipeline shards by canonical
//! flow hash and drives them on OS threads, with per-flow verdicts
//! identical to the single-shard engine. See `docs/engine.md`.

pub use splidt_core as core;
pub use splidt_core::engine;
pub use splidt_dataplane as dataplane;
pub use splidt_dt as dt;
pub use splidt_flow as flow;
pub use splidt_net as net;
pub use splidt_p4 as p4;
pub use splidt_ranging as ranging;
pub use splidt_search as search;

/// One-stop imports for examples and quick experiments.
pub mod prelude {
    pub use splidt_core::baselines::{
        Ideal, Leo, LeoParams, NetBeacon, NetBeaconParams, PerPacket,
    };
    pub use splidt_core::engine::{
        BatchReport, Classifier, Engine, EngineBuilder, ShardedEngine, Trainable, Verdict,
    };
    pub use splidt_core::{
        canonical_flow_fp, canonical_flow_index, compile, evaluate_partitioned, max_flows,
        model_rules, run_flows, splidt_footprint, train_partitioned, DigestTap, DigestTapStats,
        LifecyclePolicy, LifecycleStats, PartitionedTree, SlotPressure, SplidtConfig, SplidtError,
        StreamingTrainer, StreamingTrainerParams,
    };
    pub use splidt_dataplane::resources::TargetSpec;
    pub use splidt_flow::{
        catalog, generate, select_flows, spec, stratified_split, windowed_dataset, DatasetId,
        Environment, FlowTrace,
    };
    pub use splidt_net::{
        replay_udp, run_ingress, FrameSource, GenConfig, IngressConfig, PcapSource, ReplaySource,
        UdpSource,
    };
    pub use splidt_search::{optimize, BoOptions, Objectives, ParamSpace};
}
