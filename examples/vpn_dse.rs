//! Design-space exploration on VPN detection (ISCX-VPN2016 analog): run
//! the Bayesian-optimization search and print the Pareto frontier of
//! (F1, supported flows) — the per-dataset workflow of the paper's §3.3.
//!
//! Run with: `cargo run --release --example vpn_dse`

use splidt::core::{evaluate_partitioned, max_flows, splidt_footprint, train_partitioned};
use splidt::flow::windowed_dataset;
use splidt::prelude::*;

fn main() {
    let id = DatasetId::D3;
    let n_classes = spec(id).n_classes as usize;
    let flows = generate(id, 1200, 11);
    let (tr, te) = stratified_split(&flows, 0.3, 1);
    let train_flows = select_flows(&flows, &tr);
    let test_flows = select_flows(&flows, &te);
    println!("dataset: {} — searching…", spec(id).name);

    let target = TargetSpec::tofino1();
    let evaluator = |cfg: &SplidtConfig| {
        let wd = windowed_dataset(&train_flows, cfg.n_partitions(), n_classes);
        let model = train_partitioned(&wd, cfg, &catalog().hardware_eligible());
        let wd_te = windowed_dataset(&test_flows, cfg.n_partitions(), n_classes);
        let f1 = evaluate_partitioned(&model, &wd_te);
        let flows_cap = max_flows(&splidt_footprint(&model), &target);
        Objectives { f1, max_flows: flows_cap, feasible: flows_cap > 0 }
    };

    let res = optimize(
        &ParamSpace::default(),
        &evaluator,
        &BoOptions { budget: 32, batch: 8, init: 10, pool: 128, seed: 42 },
    );

    println!("\nconvergence (best F1 after n evaluations):");
    for it in &res.iterations {
        println!("  {:>3} evals → {:.3}", it.evaluations, it.best_f1);
    }

    println!("\nPareto frontier (F1 vs supported flows):");
    let mut entries: Vec<_> = res.pareto.iter().map(|&i| &res.history[i]).collect();
    entries.sort_by_key(|e| std::cmp::Reverse(e.1.max_flows));
    for (cfg, obj) in entries {
        println!(
            "  F1 {:.3} @ {:>9} flows — D={} partitions={:?} k={}",
            obj.f1,
            obj.max_flows,
            cfg.total_depth(),
            cfg.partitions,
            cfg.k
        );
    }
}
