//! Feature-scaling demo (the paper's headline claim): with a fixed
//! register budget of k slots per flow, SpliDT's total distinct feature
//! count grows with the number of partitions, while a one-shot top-k model
//! is pinned at k features — Figure 11 in miniature, on live models.
//!
//! Run with: `cargo run --release --example feature_scaling`

use splidt::core::{splidt_footprint, train_partitioned};
use splidt::flow::windowed_dataset;
use splidt::prelude::*;

fn main() {
    let id = DatasetId::D5;
    let n_classes = spec(id).n_classes as usize;
    let flows = generate(id, 1200, 5);
    let (tr, _) = stratified_split(&flows, 0.3, 1);
    let train_flows = select_flows(&flows, &tr);
    println!("dataset: {} — k = 4 feature slots per flow\n", spec(id).name);
    println!(
        "{:<12} {:>14} {:>18} {:>16}",
        "partitions", "subtrees", "distinct features", "reg bits/flow"
    );
    for p in 1..=6 {
        let cfg = SplidtConfig { partitions: vec![3; p], k: 4, ..Default::default() };
        let wd = windowed_dataset(&train_flows, p, n_classes);
        let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
        let fp = splidt_footprint(&model);
        println!(
            "{:<12} {:>14} {:>18} {:>16}",
            p,
            model.n_subtrees(),
            model.total_features().len(),
            fp.feature_register_bits()
        );
    }
    println!("\none-shot top-k model: distinct features == register bits / 32 (pinned at k)");
}
