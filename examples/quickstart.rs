//! Quickstart: train a partitioned decision tree on an IoT-classification
//! dataset, compile it **once** into a streaming engine, run traffic
//! through the data-plane simulator, and verify the pipeline classifies
//! exactly like the software model — then scale it across shards.
//!
//! Run with: `cargo run --release --example quickstart`

use splidt::prelude::*;

fn main() {
    // 1. A labelled traffic dataset: the CIC-IoT2023-a analog (4 classes).
    let id = DatasetId::D2;
    let n_classes = spec(id).n_classes as usize;
    let flows = generate(id, 1200, 7);
    let (tr, te) = stratified_split(&flows, 0.3, 1);
    let train_flows = select_flows(&flows, &tr);
    let test_flows = select_flows(&flows, &te);
    println!("dataset: {} ({n_classes} classes, {} flows)", spec(id).name, flows.len());

    // 2. Train through the uniform `Trainable::fit` entry point: 3
    //    partitions of depths [3,3,2], k = 4 feature slots per subtree
    //    (Algorithm 1 of the paper). Every baseline (NetBeacon, Leo,
    //    per-packet, ideal) trains through the same contract.
    let cfg = SplidtConfig { partitions: vec![3, 3, 2], k: 4, ..Default::default() };
    let model = PartitionedTree::fit(&train_flows, n_classes, &cfg).expect("trains");
    println!(
        "model: {} subtrees across {} partitions; ≤{} features/subtree, {} distinct features total",
        model.n_subtrees(),
        model.n_partitions(),
        model.max_features_per_subtree(),
        model.total_features().len()
    );
    println!("software test F1: {:.3}", model.evaluate_flows(&test_flows));

    // 3. Resources: would it fit a Tofino1, and at how many flows?
    let fp = model.footprint().expect("splidt has a deployable footprint");
    let rules = model_rules(&model);
    println!(
        "footprint: {} reg bits/flow ({} feature bits), {} TCAM entries, model key {} bits",
        fp.per_flow_bits(),
        fp.feature_register_bits(),
        rules.tcam_entries,
        rules.model_key_bits,
    );
    println!("max concurrent flows on Tofino1: {}", max_flows(&fp, &TargetSpec::tofino1()));

    // 4. Compile once into a streaming engine and replay the test flows
    //    packet by packet. `engine.run` batches admit → ingest → report;
    //    live traffic would call `admit`/`ingest`/`drain_digests` itself.
    let mut engine =
        EngineBuilder::new(&model).flow_slots(1 << 16).stagger_us(5_000).build().expect("compiles");
    let report = engine.run(&test_flows).expect("runs");
    println!(
        "data plane: F1 {:.3}, software agreement {:.1}%, {:.2} recirculations/flow",
        report.f1,
        report.software_agreement * 100.0,
        report.recirc_per_flow
    );
    assert!((report.software_agreement - 1.0).abs() < 1e-9, "pipeline must match software");

    // 5. The compiled program is reusable: reset and run again — or shard
    //    it across threads for throughput (verdicts stay identical).
    engine.reset();
    let mut sharded =
        EngineBuilder::new(&model).build_sharded(4).expect("compiles once, shards 4×");
    let sharded_report = sharded.run(&test_flows).expect("runs");
    assert_eq!(report.flows.len(), sharded_report.flows.len());
    println!(
        "4-shard engine: {} packets across {} shards, verdicts identical: {}",
        sharded_report.meters.packets,
        sharded.n_shards(),
        report.flows == sharded_report.flows,
    );
    println!("ok: pipeline inference is bit-exact with the software model");
}
