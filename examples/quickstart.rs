//! Quickstart: train a partitioned decision tree on an IoT-classification
//! dataset, inspect it, compile it to the data-plane simulator, and verify
//! the pipeline classifies exactly like the software model.
//!
//! Run with: `cargo run --release --example quickstart`

use splidt::prelude::*;

fn main() {
    // 1. A labelled traffic dataset: the CIC-IoT2023-a analog (4 classes).
    let id = DatasetId::D2;
    let n_classes = spec(id).n_classes as usize;
    let flows = generate(id, 1200, 7);
    let (tr, te) = stratified_split(&flows, 0.3, 1);
    let train_flows = select_flows(&flows, &tr);
    let test_flows = select_flows(&flows, &te);
    println!("dataset: {} ({n_classes} classes, {} flows)", spec(id).name, flows.len());

    // 2. Configure and train: 3 partitions of depths [3,3,2], k = 4
    //    feature slots per subtree (Algorithm 1 of the paper).
    let cfg = SplidtConfig { partitions: vec![3, 3, 2], k: 4, ..Default::default() };
    let wd = windowed_dataset(&train_flows, cfg.n_partitions(), n_classes);
    let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
    let wd_test = windowed_dataset(&test_flows, cfg.n_partitions(), n_classes);
    println!(
        "model: {} subtrees across {} partitions; ≤{} features/subtree, {} distinct features total",
        model.n_subtrees(),
        model.n_partitions(),
        model.max_features_per_subtree(),
        model.total_features().len()
    );
    println!("software test F1: {:.3}", evaluate_partitioned(&model, &wd_test));

    // 3. Resources: would it fit a Tofino1, and at how many flows?
    let fp = splidt_footprint(&model);
    let rules = model_rules(&model);
    println!(
        "footprint: {} reg bits/flow ({} feature bits), {} TCAM entries, model key {} bits",
        fp.per_flow_bits(),
        fp.feature_register_bits(),
        rules.tcam_entries,
        rules.model_key_bits,
    );
    println!("max concurrent flows on Tofino1: {}", max_flows(&fp, &TargetSpec::tofino1()));

    // 4. Compile to the pipeline and replay the test flows packet by packet.
    let report = run_flows(&model, &test_flows, 1 << 16, 5_000).expect("compiles");
    println!(
        "data plane: F1 {:.3}, software agreement {:.1}%, {:.2} recirculations/flow",
        report.f1,
        report.software_agreement * 100.0,
        report.recirc_per_flow
    );
    assert!((report.software_agreement - 1.0).abs() < 1e-9, "pipeline must match software");
    println!("ok: pipeline inference is bit-exact with the software model");
}
