//! Intrusion detection (CIC-IDS2017 analog): SpliDT vs the NetBeacon and
//! Leo baselines at the paper's flow targets, plus recirculation overhead
//! and time-to-detection — the paper's end-to-end story on one dataset.
//!
//! Run with: `cargo run --release --example intrusion_detection`

use splidt::core::baselines::{Leo, LeoParams, NetBeacon, NetBeaconParams};
use splidt::core::{recirc, ttd};
use splidt::prelude::*;

fn main() {
    let id = DatasetId::D6;
    let n_classes = spec(id).n_classes as usize;
    let flows = generate(id, 1600, 3);
    let (tr, te) = stratified_split(&flows, 0.3, 1);
    let train_flows = select_flows(&flows, &tr);
    let test_flows = select_flows(&flows, &te);
    println!("dataset: {}", spec(id).name);

    // SpliDT: 4 partitions, k = 4.
    let cfg = SplidtConfig { partitions: vec![3, 3, 3, 2], k: 4, ..Default::default() };
    let wd = windowed_dataset(&train_flows, cfg.n_partitions(), n_classes);
    let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
    let wd_test = windowed_dataset(&test_flows, cfg.n_partitions(), n_classes);
    let f1_sp = evaluate_partitioned(&model, &wd_test);

    // Baselines with the same global budget k = 4.
    let nb = NetBeacon::train(&train_flows, n_classes, &NetBeaconParams::default());
    let leo = Leo::train(&train_flows, n_classes, &LeoParams::default());
    let (f1_nb, f1_leo) = (nb.evaluate(&test_flows), leo.evaluate(&test_flows));
    println!("F1 — SpliDT {f1_sp:.3} | NetBeacon {f1_nb:.3} | Leo {f1_leo:.3}");
    println!(
        "distinct features — SpliDT {} | NetBeacon {} | Leo {}",
        model.total_features().len(),
        nb.top_k.len(),
        leo.top_k.len()
    );

    // Capacity on Tofino1 at equal register budgets.
    let t = TargetSpec::tofino1();
    println!(
        "max flows — SpliDT {} | NetBeacon {} | Leo {}",
        max_flows(&splidt_footprint(&model), &t),
        max_flows(&nb.footprint(), &t),
        max_flows(&leo.footprint(), &t)
    );

    // Recirculation overhead at 1M flows (Table 5's worst-case check).
    for env in Environment::both() {
        let st = recirc::model_recirc(&model, &env, 1_000_000, 7);
        println!(
            "recirc @1M flows [{}]: mean {:.1} Mbps, peak {:.1} Mbps ({:.4}% of 100G)",
            env.name,
            st.mean_mbps,
            st.max_mbps,
            recirc::recirc_fraction(st.max_mbps, t.recirc_gbps) * 100.0
        );
    }

    // TTD medians (Figure 10's point: all three systems detect equally fast).
    let env = Environment::hadoop();
    for (name, sys) in [
        (
            "SpliDT",
            ttd::TtdSystem::Splidt { partitions: model.n_partitions(), early_exit_prob: 0.05 },
        ),
        ("NetBeacon", ttd::TtdSystem::NetBeacon { phases: 8 }),
        ("Leo", ttd::TtdSystem::Leo),
    ] {
        let samples = ttd::sample_ttd_ms(sys, &env, 4000, 1);
        println!("TTD median [{name}]: {:.1} ms", ttd::quantile(&samples, 0.5));
    }
}
