#!/usr/bin/env bash
# One-command two-process loopback demo of the network ingress subsystem:
# builds the `splidt-serve` receiver and `splidt-gen` generator, starts
# the receiver on an ephemeral UDP port, waits for its READY line, replays
# the 4096-flow churn schedule against it from a second process, and
# checks the receiver's verdict (exact ingress reconciliation + the
# distinct-flows-classified floor).
#
# Usage:
#   scripts/run_loopback.sh [FLOWS] [TIME_SCALE] [EXPECT_CLASSIFIED]
#
# Defaults: 4096 flows, time-scale 2.0 (wall-clock stretch of the
# schedule — raise it on very small machines), floor 2048 (the churn
# criterion, 8 x 256 flow slots). The whole run takes ~5-10s plus one
# model-training pass per process.
set -euo pipefail

flows=${1:-4096}
time_scale=${2:-2.0}
expect=${3:-2048}

cd "$(dirname "$0")/.."

echo "building splidt-serve and splidt-gen (release)..."
cargo build -q --release -p splidt-net --bin splidt-serve --bin splidt-gen

serve_log=$(mktemp)
trap 'kill $serve_pid 2>/dev/null || true; rm -f "$serve_log"' EXIT

./target/release/splidt-serve \
    --addr 127.0.0.1:0 --time-scale "$time_scale" \
    --expect-classified "$expect" >"$serve_log" 2>&1 &
serve_pid=$!

# Wait for the receiver to train its model and bind (READY line).
addr=""
for _ in $(seq 1 600); do
    addr=$(awk '/^READY listening on / { print $4; exit }' "$serve_log")
    [ -n "$addr" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "splidt-serve exited before READY:" >&2
        cat "$serve_log" >&2
        exit 1
    fi
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "timed out waiting for splidt-serve READY" >&2
    cat "$serve_log" >&2
    exit 1
fi
echo "receiver ready on $addr — starting generator"

./target/release/splidt-gen \
    --addr "$addr" --flows "$flows" --time-scale "$time_scale"

# The stop sentinel ends the receiver; its exit code carries the gates
# (reconciliation + classified floor).
if wait "$serve_pid"; then
    status=0
else
    status=$?
fi
cat "$serve_log"
if [ "$status" -ne 0 ]; then
    echo "FAIL: splidt-serve exited $status" >&2
fi
exit "$status"
