#!/usr/bin/env bash
# Aggregates the flat JSON files the bench smokes emit (hotpath_smoke /
# lookup_smoke / churn_smoke / ingress_smoke / drift_smoke) into one
# Markdown table: rows are metrics, one column per result file. CI's
# `bench-summary` job appends the output to $GITHUB_STEP_SUMMARY so every
# run shows all five smokes side by side; locally it renders fine on a
# terminal too.
#
# A result file that does not exist (e.g. one smoke leg failed before
# writing its artifact) still gets a column — every cell reads
# "— (missing)" — instead of failing the whole summary; the summary job
# must stay readable exactly when a leg broke.
#
# Usage:
#   scripts/bench_summary.sh BENCH_hotpath.json BENCH_lookup.json BENCH_churn.json
#   scripts/bench_summary.sh BENCH_*.json >> "$GITHUB_STEP_SUMMARY"
#
# Only scalar "key": value pairs are tabulated; array-valued fields (the
# slot-pressure histogram) are summarized per file below the table.
set -euo pipefail

if [ $# -lt 1 ]; then
    echo "usage: $0 RESULT.json..." >&2
    exit 64
fi

colname() { # strip path, BENCH_ prefix, .json suffix
    local name=${1##*/}
    name=${name#BENCH_}
    echo "${name%.json}"
}

present=()
missing_names=""
for f in "$@"; do
    if [ -r "$f" ]; then
        present+=("$f")
    else
        missing_names="$missing_names $(colname "$f")"
    fi
done
missing_names=${missing_names# }

echo "## Bench smoke summary"
echo

if [ ${#present[@]} -eq 0 ]; then
    echo "_No readable result files._"
    for n in $missing_names; do
        echo
        echo "| metric | $n |"
        echo "|---|---|"
        echo "| — | — (missing) |"
    done
    exit 0
fi

awk -v missing="$missing_names" '
    function colname(path,   n, parts) {
        n = split(path, parts, "/")
        name = parts[n]
        sub(/^BENCH_/, "", name)
        sub(/\.json$/, "", name)
        return name
    }
    FNR == 1 {
        nfiles++
        files[nfiles] = colname(FILENAME)
    }
    # Scalar fields: "key": value  (value up to , or })
    match($0, /^[ \t]*"[A-Za-z0-9_]+"[ \t]*:[ \t]*[^ \t]/) {
        line = $0
        sub(/^[ \t]*"/, "", line)
        key = line
        sub(/".*/, "", key)
        val = line
        sub(/^[^:]*:[ \t]*/, "", val)
        sub(/[,}][ \t]*$/, "", val)
        if (val ~ /^\[/) {
            # array-valued (histogram): keep the whole bracket expression
            hist[nfiles "," key] = $0
            next
        }
        if (key == "bench") next
        if (!(key in seen)) {
            seen[key] = ++nkeys
            keys[nkeys] = key
        }
        cell[nfiles "," seen[key]] = val
    }
    END {
        nmiss = split(missing, miss, " ")
        for (m = 1; m <= nmiss; m++) {
            files[++nfiles] = miss[m]
            missingcol[nfiles] = 1
        }
        header = "| metric |"
        rule = "|---|"
        for (f = 1; f <= nfiles; f++) {
            header = header " " files[f] " |"
            rule = rule "---|"
        }
        print header
        print rule
        for (k = 1; k <= nkeys; k++) {
            row = "| `" keys[k] "` |"
            for (f = 1; f <= nfiles; f++) {
                if (missingcol[f])
                    v = "— (missing)"
                else
                    v = cell[f "," k]
                row = row " " (v == "" ? "—" : v) " |"
            }
            print row
        }
        for (f = 1; f <= nfiles; f++) {
            for (combined in hist) {
                split(combined, idx, ",")
                if (idx[1] + 0 == f) {
                    line = hist[combined]
                    gsub(/^[ \t]+|[ \t]+$/, "", line)
                    sub(/,$/, "", line)
                    printf "\n**%s** `%s`\n", files[f], line
                }
            }
        }
    }
' "${present[@]}"
