#!/usr/bin/env bash
# One-command demo of online streaming training + atomic live model swap:
# builds `drift_smoke` (release) and runs the full control loop — a
# batch-trained model serves a 4096-flow churn schedule, class behaviour
# rotates mid-stream, the engine's digest tap retrains a replacement
# from post-drift traffic only, staging compiles it off-thread while
# live churn keeps flowing, and the swap flips the pipeline atomically
# with every ownership lane, lifecycle counter and pending digest
# carried. The smoke's own gates enforce drift recovery, zero lost flow
# state and the zero-allocation discipline; the committed baseline gates
# throughput.
#
# Usage:
#   scripts/run_drift.sh [OUT_JSON] [MAX_DROP_PCT]
#
# Defaults: results to /tmp/BENCH_drift.json, 40% pps drop tolerance
# (the run is a single schedule pass, so wall-clock noise is expected;
# the correctness gates are exact). Takes ~5s plus one model-training
# pass. Compare two runs with scripts/bench_diff.sh.
set -euo pipefail

out=${1:-/tmp/BENCH_drift.json}
max_drop=${2:-40}

cd "$(dirname "$0")/.."

echo "building drift_smoke (release)..."
cargo build -q --release -p splidt-bench --bin drift_smoke

./target/release/drift_smoke \
    --out "$out" \
    --baseline bench/drift_baseline.json \
    --max-drop-pct "$max_drop"

echo
echo "diff against the committed baseline:"
scripts/bench_diff.sh bench/drift_baseline.json "$out" "$max_drop"
