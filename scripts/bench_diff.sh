#!/usr/bin/env bash
# Diffs two bench result files (the flat JSON `hotpath_smoke` /
# `lookup_smoke` / `churn_smoke` emit) and fails when a gated metric
# regressed — the local pre-push twin of CI's bench-smoke gate. Works on
# any bench's output: hotpath files gate pps and pps_scaled, the five
# zero-allocation probes (hot loop, digest ring, burst path, worker
# ring, banked path), the vectorization inversion gate (burst-32 pps
# >= burst-1 pps from the burst sweep) and the flow-state banking floor
# (banked >= 1.05x split at burst 32), lookup files gate the
# indexed-vs-linear speedup floor at 4096
# entries, churn files gate pps, the churn zero-allocation probe, the
# distinct-flows-classified floor (8x flow_slots), lifecycle counter
# reconciliation (pinned evictions and in-band FIN/RST releases
# included), nonzero unsolicited refusals, a pinned-class trace, and the
# presence of the slot-pressure histogram. Ingress files (ingress_smoke)
# gate pps, the ring-consumer zero-allocation probe, exact ingress
# accounting reconciliation, and the classified_floor criterion. Drift
# files (drift_smoke, keyed off the expected_swaps field) gate pps, the
# mid-stream-swap zero-allocation probe, the post-swap recovery floor,
# strict improvement over the degraded phase, the exact swap count and
# zero-flow-state-lost across the flip (lifecycle_carried). P4 files
# (p4_smoke, keyed off the golden_match field) gate byte-exact goldens,
# the emitted-text resource cross-check, and exact equality of every
# structural count (stages / tables / registers / salus /
# manifest_entries) — counts are semantics, not timings, so no drift
# band applies.
#
# Usage:
#   scripts/bench_diff.sh BASELINE.json CANDIDATE.json [max_drop_pct]
#
# Typical flow:
#   cargo run --release -p splidt-bench --bin hotpath_smoke -- --out /tmp/before.json
#   ... hack on the hot path ...
#   cargo run --release -p splidt-bench --bin hotpath_smoke -- --out /tmp/after.json
#   scripts/bench_diff.sh /tmp/before.json /tmp/after.json
#
# (With the real criterion crate installed, `cargo bench --bench hotpath
# -- --save-baseline main` / `-- --baseline main` gives per-benchmark
# statistical comparisons; the in-tree shim has no baseline store, so this
# script compares the smoke bin's JSON instead.)
set -euo pipefail

if [ $# -lt 2 ]; then
    echo "usage: $0 BASELINE.json CANDIDATE.json [max_drop_pct]" >&2
    exit 64
fi

baseline=$1
candidate=$2
max_drop=${3:-15}

metric() { # metric FILE KEY
    awk -v key="\"$2\":" '
        index($0, key) {
            sub(".*" key "[ \t]*", "");
            sub("[,}].*", "");
            print $0; exit
        }' "$1"
}

for f in "$baseline" "$candidate"; do
    [ -r "$f" ] || { echo "cannot read $f" >&2; exit 66; }
    if [ -z "$(metric "$f" pps)" ] && [ -z "$(metric "$f" ternary_4096_speedup)" ] \
        && [ -z "$(metric "$f" golden_match)" ]; then
        echo "no gated metric (pps / ternary_4096_speedup / golden_match) in $f" >&2
        exit 65
    fi
done

printf '%-28s %14s %14s %9s\n' metric baseline candidate delta%
fail=0
for key in pps pps_burst1 pps_burst8 pps_burst32 pps_burst64 \
           pps_scaled pps_scaled_split bank_speedup \
           sweep_frames sweep_slots \
           allocs_per_packet hot_loop_allocs_per_packet \
           digest_ring_allocs_per_packet churn_allocs_per_packet \
           ingress_allocs_per_packet drift_allocs_per_packet \
           burst_allocs_per_packet worker_allocs_per_packet \
           bank_allocs_per_packet \
           sent received steered dropped_ring_full dropped_malformed \
           consumed socket_loss classified_floor \
           classified_flows flow_slots distinct_flows \
           admitted takeovers evictions_idle evictions_decided \
           evictions_pinned released_fin unsolicited pinned_defended \
           live_collisions post_verdict_pkts \
           pressure_total pressure_peak \
           pre_acc degraded_acc recovered_acc \
           pre_verdicts degraded_verdicts recovered_verdicts \
           tap_fed swaps staged_generation lifecycle_carried \
           ternary_4096_speedup range_4096_speedup \
           ternary_4096_indexed_lps range_4096_indexed_lps \
           exact_4096_indexed_lps \
           fixtures golden_match crosscheck_ok stages tables registers \
           salus manifest_entries; do
    b=$(metric "$baseline" "$key")
    c=$(metric "$candidate" "$key")
    [ -n "$b" ] && [ -n "$c" ] || continue
    delta=$(awk -v b="$b" -v c="$c" 'BEGIN { if (b == 0) print "n/a"; else printf "%+.1f", (c - b) / b * 100 }')
    printf '%-28s %14s %14s %9s\n' "$key" "$b" "$c" "$delta"
done

if [ -n "$(metric "$candidate" pps)" ] && [ -n "$(metric "$baseline" pps)" ]; then
    pps_ok=$(awk -v b="$(metric "$baseline" pps)" -v c="$(metric "$candidate" pps)" -v m="$max_drop" \
        'BEGIN { print (c >= b * (1 - m / 100)) ? 1 : 0 }')
    if [ "$pps_ok" != 1 ]; then
        echo "FAIL: pps dropped more than ${max_drop}% vs baseline" >&2
        fail=1
    fi
fi

for key in hot_loop_allocs_per_packet digest_ring_allocs_per_packet \
           churn_allocs_per_packet ingress_allocs_per_packet \
           drift_allocs_per_packet burst_allocs_per_packet \
           worker_allocs_per_packet bank_allocs_per_packet; do
    v=$(metric "$candidate" "$key")
    [ -n "$v" ] || continue
    ok=$(awk -v h="$v" 'BEGIN { print (h == 0) ? 1 : 0 }')
    if [ "$ok" != 1 ]; then
        echo "FAIL: $key is nonzero ($v allocs/packet)" >&2
        fail=1
    fi
done

# Churn lifecycle gates: >= 8x flow_slots distinct flows classified, and
# the counters must reconcile (mirrors churn_smoke's own gates).
cf=$(metric "$candidate" classified_flows)
fs=$(metric "$candidate" flow_slots)
if [ -n "$cf" ] && [ -n "$fs" ]; then
    ok=$(awk -v c="$cf" -v s="$fs" 'BEGIN { print (c >= 8 * s) ? 1 : 0 }')
    if [ "$ok" != 1 ]; then
        echo "FAIL: classified_flows $cf is below 8x flow_slots ($fs)" >&2
        fail=1
    fi
fi
rec=$(metric "$candidate" reconciled)
if [ -n "$rec" ] && [ "$rec" != 1 ]; then
    echo "FAIL: lifecycle counters did not reconcile (reconciled=$rec)" >&2
    fail=1
fi

# Ingress gate (ingress candidates carry classified_floor instead of
# flow_slots): the end-to-end loopback run must classify at least the
# same distinct-flows floor the churn smoke enforces in-process.
ifloor=$(metric "$candidate" classified_floor)
if [ -n "$ifloor" ] && [ -n "$cf" ]; then
    ok=$(awk -v c="$cf" -v f="$ifloor" 'BEGIN { print (c >= f) ? 1 : 0 }')
    if [ "$ok" != 1 ]; then
        echo "FAIL: classified_flows $cf is below the ingress floor ($ifloor)" >&2
        fail=1
    fi
fi

# Protocol-aware policy gates (churn candidates only — keyed off the
# flow_slots field like the gates above): the TCP-aware fixture must
# surface unsolicited refusals, leave a pinned-eviction trace that the
# reconciliation above accounts for, release lanes in-band on FIN/RST,
# and publish the slot-pressure histogram.
if [ -n "$fs" ]; then
    uns=$(metric "$candidate" unsolicited)
    if [ -z "$uns" ] || [ "$uns" = 0 ]; then
        echo "FAIL: churn candidate has no unsolicited refusals (unsolicited=${uns:-missing})" >&2
        fail=1
    fi
    rfin=$(metric "$candidate" released_fin)
    if [ -z "$rfin" ] || [ "$rfin" = 0 ]; then
        echo "FAIL: churn candidate released no lanes in-band (released_fin=${rfin:-missing})" >&2
        fail=1
    fi
    epin=$(metric "$candidate" evictions_pinned)
    pdef=$(metric "$candidate" pinned_defended)
    ppen=$(metric "$candidate" pinned_pending)
    pinned_trace=$(awk -v a="${epin:-0}" -v b="${pdef:-0}" -v c="${ppen:-0}" \
        'BEGIN { print (a + b + c > 0) ? 1 : 0 }')
    if [ "$pinned_trace" != 1 ]; then
        echo "FAIL: pinned class left no trace (evictions_pinned/pinned_defended/pinned_pending all 0)" >&2
        fail=1
    fi
    if [ -z "$(metric "$candidate" pressure_hist)" ]; then
        echo "FAIL: churn candidate carries no slot-pressure histogram" >&2
        fail=1
    fi
fi

# Drift gates (drift candidates only — keyed off the expected_swaps
# field): the retrained model must recover classification on the drifted
# distribution, exactly the expected number of live swaps must have
# completed, and no flow state may be lost across the swap instant
# (mirrors drift_smoke's own gates; the reconciled gate above already
# covers drift files too).
esw=$(metric "$candidate" expected_swaps)
if [ -n "$esw" ]; then
    racc=$(metric "$candidate" recovered_acc)
    dacc=$(metric "$candidate" degraded_acc)
    ok=$(awk -v r="${racc:-0}" 'BEGIN { print (r >= 0.35) ? 1 : 0 }')
    if [ "$ok" != 1 ]; then
        echo "FAIL: recovered_acc ${racc:-missing} is below the 0.35 recovery floor" >&2
        fail=1
    fi
    ok=$(awk -v r="${racc:-0}" -v d="${dacc:-0}" 'BEGIN { print (r > d) ? 1 : 0 }')
    if [ "$ok" != 1 ]; then
        echo "FAIL: recovered_acc ${racc:-missing} did not improve on degraded_acc ${dacc:-missing}" >&2
        fail=1
    fi
    sw=$(metric "$candidate" swaps)
    if [ "${sw:-0}" != "$esw" ]; then
        echo "FAIL: $sw swaps completed; expected $esw" >&2
        fail=1
    fi
    lcar=$(metric "$candidate" lifecycle_carried)
    if [ "${lcar:-0}" != 1 ]; then
        echo "FAIL: flow state was not carried across the swap (lifecycle_carried=${lcar:-missing})" >&2
        fail=1
    fi
fi

# Vectorization floor (hotpath candidates carrying the burst sweep): the
# wave executor at burst 32 must not fall behind burst 1 — the inversion
# gate (mirrors hotpath_smoke's own gate; flow-state banking collapsed
# the scalar stall fraction, compressing the observed band from
# 1.13-1.20x to 1.04-1.10x while raising both absolute numbers).
vb1=$(metric "$candidate" pps_burst1)
vb32=$(metric "$candidate" pps_burst32)
if [ -n "$vb1" ] && [ -n "$vb32" ]; then
    ok=$(awk -v a="$vb1" -v b="$vb32" 'BEGIN { print (b >= 1.00 * a) ? 1 : 0 }')
    if [ "$ok" != 1 ]; then
        echo "FAIL: burst-32 pps ($vb32) is below burst-1 pps ($vb1) — inversion" >&2
        fail=1
    fi
fi

# Flow-state banking floor (hotpath candidates carrying the scaled
# fixture's split baseline): the cache-line-coalesced register file must
# beat the split per-stage arrays at burst 32 by >= 1.05x (mirrors
# hotpath_smoke's own gate; observed band 1.07-1.13x, floor below its
# low end like the pps floors), and the absolute scaled-fixture pps
# holds the same max-drop budget as pps.
bsp=$(metric "$candidate" bank_speedup)
if [ -n "$bsp" ]; then
    ok=$(awk -v s="$bsp" 'BEGIN { print (s >= 1.05) ? 1 : 0 }')
    if [ "$ok" != 1 ]; then
        echo "FAIL: bank_speedup is ${bsp}x, below the 1.05x floor" >&2
        fail=1
    fi
fi
psc_b=$(metric "$baseline" pps_scaled)
psc_c=$(metric "$candidate" pps_scaled)
if [ -n "$psc_b" ] && [ -n "$psc_c" ]; then
    ok=$(awk -v b="$psc_b" -v c="$psc_c" -v m="$max_drop" \
        'BEGIN { print (c >= b * (1 - m / 100)) ? 1 : 0 }')
    if [ "$ok" != 1 ]; then
        echo "FAIL: pps_scaled dropped more than ${max_drop}% vs baseline" >&2
        fail=1
    fi
fi

# P4-backend gates (p4 candidates only — keyed off the golden_match
# field): the emitted programs must match the committed goldens byte for
# byte, the resource recount from the emitted text must equal the
# analytic model, and every structural count must equal the baseline
# exactly (mirrors p4_smoke's own gates).
gm=$(metric "$candidate" golden_match)
if [ -n "$gm" ]; then
    if [ "$gm" != 1 ]; then
        echo "FAIL: emitted P4 does not match the committed goldens (golden_match=$gm)" >&2
        fail=1
    fi
    cc=$(metric "$candidate" crosscheck_ok)
    if [ "${cc:-0}" != 1 ]; then
        echo "FAIL: emitted-P4 resource recount disagrees with the analytic model (crosscheck_ok=${cc:-missing})" >&2
        fail=1
    fi
    for key in fixtures stages tables registers salus manifest_entries; do
        b=$(metric "$baseline" "$key")
        c=$(metric "$candidate" "$key")
        [ -n "$b" ] && [ -n "$c" ] || continue
        if [ "$b" != "$c" ]; then
            echo "FAIL: structural count $key drifted: baseline $b, candidate $c" >&2
            fail=1
        fi
    done
fi

# Lookup-bench floor: indexed ternary/range must beat the linear oracle
# by >= 5x at the top of the sweep (mirrors lookup_smoke's own gate).
for key in ternary_4096_speedup range_4096_speedup; do
    v=$(metric "$candidate" "$key")
    [ -n "$v" ] || continue
    ok=$(awk -v s="$v" 'BEGIN { print (s >= 5) ? 1 : 0 }')
    if [ "$ok" != 1 ]; then
        echo "FAIL: $key is ${v}x, below the 5x floor" >&2
        fail=1
    fi
done

exit $fail
