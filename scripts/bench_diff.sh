#!/usr/bin/env bash
# Diffs two hot-path result files (the flat JSON `hotpath_smoke` emits)
# and fails when throughput regressed past the threshold — the local
# pre-push twin of CI's bench-smoke gate.
#
# Usage:
#   scripts/bench_diff.sh BASELINE.json CANDIDATE.json [max_drop_pct]
#
# Typical flow:
#   cargo run --release -p splidt-bench --bin hotpath_smoke -- --out /tmp/before.json
#   ... hack on the hot path ...
#   cargo run --release -p splidt-bench --bin hotpath_smoke -- --out /tmp/after.json
#   scripts/bench_diff.sh /tmp/before.json /tmp/after.json
#
# (With the real criterion crate installed, `cargo bench --bench hotpath
# -- --save-baseline main` / `-- --baseline main` gives per-benchmark
# statistical comparisons; the in-tree shim has no baseline store, so this
# script compares the smoke bin's JSON instead.)
set -euo pipefail

if [ $# -lt 2 ]; then
    echo "usage: $0 BASELINE.json CANDIDATE.json [max_drop_pct]" >&2
    exit 64
fi

baseline=$1
candidate=$2
max_drop=${3:-15}

metric() { # metric FILE KEY
    awk -v key="\"$2\":" '
        index($0, key) {
            sub(".*" key "[ \t]*", "");
            sub("[,}].*", "");
            print $0; exit
        }' "$1"
}

for f in "$baseline" "$candidate"; do
    [ -r "$f" ] || { echo "cannot read $f" >&2; exit 66; }
    [ -n "$(metric "$f" pps)" ] || { echo "no pps metric in $f" >&2; exit 65; }
done

printf '%-28s %14s %14s %9s\n' metric baseline candidate delta%
fail=0
for key in pps allocs_per_packet hot_loop_allocs_per_packet; do
    b=$(metric "$baseline" "$key")
    c=$(metric "$candidate" "$key")
    [ -n "$b" ] && [ -n "$c" ] || continue
    delta=$(awk -v b="$b" -v c="$c" 'BEGIN { if (b == 0) print "n/a"; else printf "%+.1f", (c - b) / b * 100 }')
    printf '%-28s %14s %14s %9s\n' "$key" "$b" "$c" "$delta"
done

pps_ok=$(awk -v b="$(metric "$baseline" pps)" -v c="$(metric "$candidate" pps)" -v m="$max_drop" \
    'BEGIN { print (c >= b * (1 - m / 100)) ? 1 : 0 }')
if [ "$pps_ok" != 1 ]; then
    echo "FAIL: pps dropped more than ${max_drop}% vs baseline" >&2
    fail=1
fi

hot=$(metric "$candidate" hot_loop_allocs_per_packet)
if [ -n "$hot" ]; then
    hot_ok=$(awk -v h="$hot" 'BEGIN { print (h == 0) ? 1 : 0 }')
    if [ "$hot_ok" != 1 ]; then
        echo "FAIL: steady-state hot loop allocates ($hot allocs/packet)" >&2
        fail=1
    fi
fi

exit $fail
