#!/usr/bin/env bash
# Diffs two bench result files (the flat JSON `hotpath_smoke` /
# `lookup_smoke` / `churn_smoke` emit) and fails when a gated metric
# regressed — the local pre-push twin of CI's bench-smoke gate. Works on
# any bench's output: hotpath files gate pps and the two zero-allocation
# probes, lookup files gate the indexed-vs-linear speedup floor at 4096
# entries, churn files gate pps, the churn zero-allocation probe, the
# distinct-flows-classified floor (8x flow_slots) and lifecycle counter
# reconciliation.
#
# Usage:
#   scripts/bench_diff.sh BASELINE.json CANDIDATE.json [max_drop_pct]
#
# Typical flow:
#   cargo run --release -p splidt-bench --bin hotpath_smoke -- --out /tmp/before.json
#   ... hack on the hot path ...
#   cargo run --release -p splidt-bench --bin hotpath_smoke -- --out /tmp/after.json
#   scripts/bench_diff.sh /tmp/before.json /tmp/after.json
#
# (With the real criterion crate installed, `cargo bench --bench hotpath
# -- --save-baseline main` / `-- --baseline main` gives per-benchmark
# statistical comparisons; the in-tree shim has no baseline store, so this
# script compares the smoke bin's JSON instead.)
set -euo pipefail

if [ $# -lt 2 ]; then
    echo "usage: $0 BASELINE.json CANDIDATE.json [max_drop_pct]" >&2
    exit 64
fi

baseline=$1
candidate=$2
max_drop=${3:-15}

metric() { # metric FILE KEY
    awk -v key="\"$2\":" '
        index($0, key) {
            sub(".*" key "[ \t]*", "");
            sub("[,}].*", "");
            print $0; exit
        }' "$1"
}

for f in "$baseline" "$candidate"; do
    [ -r "$f" ] || { echo "cannot read $f" >&2; exit 66; }
    if [ -z "$(metric "$f" pps)" ] && [ -z "$(metric "$f" ternary_4096_speedup)" ]; then
        echo "no gated metric (pps / ternary_4096_speedup) in $f" >&2
        exit 65
    fi
done

printf '%-28s %14s %14s %9s\n' metric baseline candidate delta%
fail=0
for key in pps allocs_per_packet hot_loop_allocs_per_packet \
           digest_ring_allocs_per_packet churn_allocs_per_packet \
           classified_flows flow_slots distinct_flows \
           admitted takeovers evictions_idle evictions_decided \
           live_collisions post_verdict_pkts \
           ternary_4096_speedup range_4096_speedup \
           ternary_4096_indexed_lps range_4096_indexed_lps \
           exact_4096_indexed_lps; do
    b=$(metric "$baseline" "$key")
    c=$(metric "$candidate" "$key")
    [ -n "$b" ] && [ -n "$c" ] || continue
    delta=$(awk -v b="$b" -v c="$c" 'BEGIN { if (b == 0) print "n/a"; else printf "%+.1f", (c - b) / b * 100 }')
    printf '%-28s %14s %14s %9s\n' "$key" "$b" "$c" "$delta"
done

if [ -n "$(metric "$candidate" pps)" ] && [ -n "$(metric "$baseline" pps)" ]; then
    pps_ok=$(awk -v b="$(metric "$baseline" pps)" -v c="$(metric "$candidate" pps)" -v m="$max_drop" \
        'BEGIN { print (c >= b * (1 - m / 100)) ? 1 : 0 }')
    if [ "$pps_ok" != 1 ]; then
        echo "FAIL: pps dropped more than ${max_drop}% vs baseline" >&2
        fail=1
    fi
fi

for key in hot_loop_allocs_per_packet digest_ring_allocs_per_packet \
           churn_allocs_per_packet; do
    v=$(metric "$candidate" "$key")
    [ -n "$v" ] || continue
    ok=$(awk -v h="$v" 'BEGIN { print (h == 0) ? 1 : 0 }')
    if [ "$ok" != 1 ]; then
        echo "FAIL: $key is nonzero ($v allocs/packet)" >&2
        fail=1
    fi
done

# Churn lifecycle gates: >= 8x flow_slots distinct flows classified, and
# the counters must reconcile (mirrors churn_smoke's own gates).
cf=$(metric "$candidate" classified_flows)
fs=$(metric "$candidate" flow_slots)
if [ -n "$cf" ] && [ -n "$fs" ]; then
    ok=$(awk -v c="$cf" -v s="$fs" 'BEGIN { print (c >= 8 * s) ? 1 : 0 }')
    if [ "$ok" != 1 ]; then
        echo "FAIL: classified_flows $cf is below 8x flow_slots ($fs)" >&2
        fail=1
    fi
fi
rec=$(metric "$candidate" reconciled)
if [ -n "$rec" ] && [ "$rec" != 1 ]; then
    echo "FAIL: lifecycle counters did not reconcile (reconciled=$rec)" >&2
    fail=1
fi

# Lookup-bench floor: indexed ternary/range must beat the linear oracle
# by >= 5x at the top of the sweep (mirrors lookup_smoke's own gate).
for key in ternary_4096_speedup range_4096_speedup; do
    v=$(metric "$candidate" "$key")
    [ -n "$v" ] || continue
    ok=$(awk -v s="$v" 'BEGIN { print (s >= 5) ? 1 : 0 }')
    if [ "$ok" != 1 ]; then
        echo "FAIL: $key is ${v}x, below the 5x floor" >&2
        fail=1
    fi
done

exit $fail
