//! Cross-crate integration: train → compile → simulate → verify that the
//! data plane reproduces software inference exactly, for several datasets
//! and configurations. This is the reproduction's core fidelity claim.

use splidt::flow::windowed_dataset;
use splidt::prelude::*;

fn run_case(id: DatasetId, partitions: Vec<usize>, k: usize, n_flows: usize, seed: u64) {
    let n_classes = spec(id).n_classes as usize;
    let flows = generate(id, n_flows, seed);
    let (tr, te) = stratified_split(&flows, 0.3, seed ^ 1);
    let train_flows = select_flows(&flows, &tr);
    let test_flows = select_flows(&flows, &te);
    let p = partitions.len();
    let cfg = SplidtConfig { partitions, k, ..Default::default() };
    let wd = windowed_dataset(&train_flows, p, n_classes);
    let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
    assert!(model.validate().is_ok());
    assert!(model.max_features_per_subtree() <= k);

    let report = run_flows(&model, &test_flows, 1 << 16, 2_000).unwrap();
    assert_eq!(report.collisions_skipped, 0);
    for (i, o) in report.flows.iter().enumerate() {
        assert_eq!(o.digests, 1, "{}: flow {i} emitted {} digests", id.tag(), o.digests);
        assert_eq!(
            o.predicted,
            Some(o.software),
            "{}: flow {i} dataplane {:?} != software {}",
            id.tag(),
            o.predicted,
            o.software
        );
        assert!(o.ttd_us.is_some());
    }
    // recirculations bounded by p per flow (p−1 boundaries + possible
    // early-exit terminal resubmission)
    assert!(report.recirc_per_flow <= p as f64 + 1e-9);
}

#[test]
fn d2_three_partitions() {
    run_case(DatasetId::D2, vec![2, 2, 2], 4, 240, 1);
}

#[test]
fn d3_four_partitions_small_k() {
    run_case(DatasetId::D3, vec![2, 2, 2, 2], 2, 220, 2);
}

#[test]
fn d6_two_partitions_large_k() {
    run_case(DatasetId::D6, vec![3, 3], 6, 220, 3);
}

#[test]
fn d7_single_partition_one_shot() {
    run_case(DatasetId::D7, vec![4], 4, 200, 4);
}

#[test]
fn quantized_16bit_model_still_exact() {
    let id = DatasetId::D2;
    let n_classes = spec(id).n_classes as usize;
    let flows = generate(id, 200, 9);
    let (tr, te) = stratified_split(&flows, 0.3, 5);
    let train_flows = select_flows(&flows, &tr);
    let test_flows = select_flows(&flows, &te);
    let cfg = SplidtConfig { partitions: vec![2, 2], k: 3, feature_bits: 24, ..Default::default() };
    let wd = windowed_dataset(&train_flows, 2, n_classes);
    let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
    let report = run_flows(&model, &test_flows, 1 << 16, 2_000).unwrap();
    assert!((report.software_agreement - 1.0).abs() < 1e-9);
}
