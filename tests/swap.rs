//! Live model swap tests: `Engine::stage_model` → `Engine::swap_staged`
//! must replace the executing program atomically while **carrying** live
//! flow state — ownership lanes, pinned verdicts, lifecycle counters,
//! pending digests — and a reset must discard staged models and tap
//! state so a reset engine is indistinguishable from a fresh one.

use proptest::prelude::*;
use splidt::core::stream::{DigestTap, StreamingTrainer, StreamingTrainerParams};
use splidt::dataplane::pipeline::{Digest, Disposition};
use splidt::dataplane::register::owner_lane;
use splidt::flow::{churn, ChurnConfig, DriftProfile};
use splidt::prelude::*;
use std::sync::OnceLock;

/// The live model (shared; training dominates test time).
fn model() -> &'static PartitionedTree {
    static MODEL: OnceLock<PartitionedTree> = OnceLock::new();
    MODEL.get_or_init(|| {
        let flows = generate(DatasetId::D2, 160, 21);
        let cfg = SplidtConfig { partitions: vec![2, 2], k: 4, ..Default::default() };
        PartitionedTree::fit(&flows, 4, &cfg).expect("trains")
    })
}

/// A structurally different replacement model (same config shape, other
/// training data — what a retrain produces).
fn model2() -> &'static PartitionedTree {
    static MODEL: OnceLock<PartitionedTree> = OnceLock::new();
    MODEL.get_or_init(|| {
        let flows = generate(DatasetId::D2, 160, 99);
        let cfg = SplidtConfig { partitions: vec![2, 2], k: 4, ..Default::default() };
        PartitionedTree::fit(&flows, 4, &cfg).expect("trains")
    })
}

/// Pre-serialized `(frame, ts_us)` pairs of a deterministic churn
/// schedule.
fn schedule_frames(flows: usize, seed: u64) -> Vec<(Vec<u8>, u64)> {
    let schedule = churn(
        DatasetId::D2,
        &ChurnConfig {
            flows,
            drift_at: Some(flows / 2),
            drift_profile: DriftProfile::default(),
            seed,
            ..Default::default()
        },
    );
    schedule
        .events()
        .into_iter()
        .map(|(ts, i, j)| (Engine::frame_for(&schedule.flows[i], j), ts))
        .collect()
}

fn sort_key(d: &Digest) -> (u64, Vec<u64>) {
    (d.ts_us, d.values.clone())
}

/// Swapping to a **clone of the running model** mid-stream must be
/// perfectly transparent: every disposition, digest and lifecycle
/// counter identical to a never-swapped engine — the strongest form of
/// "only the table contents change".
#[test]
fn swap_to_identical_model_is_transparent() {
    let frames = schedule_frames(48, 5);
    let split = frames.len() / 2;

    let mut plain = EngineBuilder::new(model()).flow_slots(64).build().unwrap();
    let mut swapped = EngineBuilder::new(model()).flow_slots(64).build().unwrap();

    let mut digests_plain = Vec::new();
    let mut digests_swapped = Vec::new();
    for (k, (frame, ts)) in frames.iter().enumerate() {
        if k == split {
            swapped.stage_model(model().clone()).expect("stages");
            swapped.swap_staged().expect("swaps");
            assert_eq!(swapped.swaps(), 1);
        }
        let a = plain.ingest(frame, *ts).expect("ingests").disposition;
        let b = swapped.ingest(frame, *ts).expect("ingests").disposition;
        assert_eq!(a, b, "disposition diverged at packet {k}");
        digests_plain.extend(plain.drain_digests());
        digests_swapped.extend(swapped.drain_digests());
    }
    digests_plain.sort_by_key(sort_key);
    digests_swapped.sort_by_key(sort_key);
    assert_eq!(digests_plain, digests_swapped, "digest streams diverged");
    assert_eq!(plain.lifecycle(), swapped.lifecycle(), "lifecycle diverged");
    assert!(swapped.lifecycle().reconciles());
}

/// Deterministic lane survival: at swap time one lane is mid-flight
/// (active) and one holds a pinned verdict. The flip must leave every
/// ownership-lane cell bit-identical, keep the pinned lane releasable by
/// the operator, and let the active flow finish under the new model in
/// its original slot.
#[test]
fn swap_preserves_pinned_and_active_lanes() {
    let slots = 64usize;
    let flows = generate(DatasetId::D2, 6, 77);
    let (p, q) = (&flows[0], &flows[1]);
    assert_ne!(
        canonical_flow_index(p, slots),
        canonical_flow_index(q, slots),
        "fixture flows must own distinct slots"
    );

    // Learn P's data-plane verdict from a throwaway engine so the real
    // engine can pin exactly that class.
    let p_class = {
        let mut probe = EngineBuilder::new(model()).flow_slots(slots).build().unwrap();
        let io = probe.io().clone();
        for j in 0..p.packets.len() {
            probe.ingest(&Engine::frame_for(p, j), 1_000 + p.packets[j].ts_us).unwrap();
        }
        let d = probe.drain_digests();
        assert!(!d.is_empty(), "P must classify");
        d[0].values[io.digest_class] as u16
    };

    let mut engine = EngineBuilder::new(model())
        .flow_slots(slots)
        .lifecycle_policy(LifecyclePolicy::default().pin_class(p_class))
        .build()
        .unwrap();
    let io = engine.io().clone();

    // P runs to its verdict: a decided, pinned lane.
    for j in 0..p.packets.len() {
        engine.ingest(&Engine::frame_for(p, j), 1_000 + p.packets[j].ts_us).unwrap();
    }
    engine.drain_digests();
    // Q runs half its packets: an active, mid-flight lane.
    let half = q.packets.len() / 2;
    for j in 0..half {
        engine.ingest(&Engine::frame_for(q, j), 1_000 + q.packets[j].ts_us).unwrap();
    }

    let p_slot = canonical_flow_index(p, slots);
    let q_slot = canonical_flow_index(q, slots);
    let lanes_before: Vec<u64> =
        (0..slots).map(|s| engine.pipeline_registers().read(io.owner_reg.index(), s)).collect();
    assert!(owner_lane::decided(lanes_before[p_slot]) && owner_lane::pinned(lanes_before[p_slot]));
    assert!(
        !owner_lane::decided(lanes_before[q_slot]) && lanes_before[q_slot] != owner_lane::FREE,
        "Q's lane must be active at swap time"
    );
    let lifecycle_before = engine.lifecycle();

    engine.stage_model(model2().clone()).expect("stages");
    engine.swap_staged().expect("swaps");

    let lanes_after: Vec<u64> =
        (0..slots).map(|s| engine.pipeline_registers().read(io.owner_reg.index(), s)).collect();
    assert_eq!(lanes_before, lanes_after, "ownership lanes must carry bit-identically");
    assert_eq!(lifecycle_before, engine.lifecycle(), "lifecycle counters must carry");

    // Q finishes under the new model: its lane keeps tracking (the cell
    // changes as packets land — it was not orphaned by the swap).
    for j in half..q.packets.len() {
        engine.ingest(&Engine::frame_for(q, j), 1_000 + q.packets[j].ts_us).unwrap();
    }
    let q_lane = engine.pipeline_registers().read(io.owner_reg.index(), q_slot);
    assert_ne!(q_lane, lanes_after[q_slot], "Q's lane must keep tracking after the swap");
    assert_eq!(owner_lane::fp(q_lane), canonical_flow_fp(q), "Q still owns its slot");
    engine.drain_digests();

    // The pinned verdict survived the swap and is still the operator's
    // to release.
    assert!(engine.release_pinned(p_slot), "pinned lane must stay releasable");
    assert!(engine.lifecycle().reconciles());
}

/// Regression: `Engine::reset` must discard a staged-but-unswapped model
/// and wipe the attached tap (observations *and* registrations) — a
/// reset engine behaves bit-for-bit like a fresh one.
#[test]
fn reset_clears_staged_model_and_tap() {
    let mut engine = EngineBuilder::new(model()).flow_slots(64).build().unwrap();
    let trainer =
        StreamingTrainer::new(model().config.clone(), 4, &StreamingTrainerParams::default());
    let mut tap = DigestTap::new(trainer);
    let flows = generate(DatasetId::D2, 8, 42);
    for f in &flows {
        tap.register_flow(f);
    }
    engine.attach_tap(tap);

    // Observe some traffic (fills the tap) and stage a model (never
    // swapped).
    for f in &flows {
        for j in 0..f.packets.len() {
            engine.ingest(&Engine::frame_for(f, j), 1_000 + f.packets[j].ts_us).unwrap();
        }
        engine.drain_digests();
    }
    assert!(engine.tap().unwrap().stats().fed > 0, "tap must have observed traffic");
    engine.stage_model(model2().clone()).expect("stages");
    assert!(engine.has_staged());
    assert_eq!(engine.staged_generation(), 1);

    engine.reset();

    assert!(!engine.has_staged(), "reset must discard the staged model");
    assert_eq!(engine.staged_generation(), 0);
    assert_eq!(engine.swaps(), 0);
    let stats = engine.tap().unwrap().stats();
    assert_eq!(
        (stats.fed, stats.unmatched, stats.registered),
        (0, 0, 0),
        "reset must wipe tap observations and registrations"
    );
    assert_eq!(engine.tap().unwrap().trainer().n_observed(), 0);

    // And the swap machinery still works from the clean slate.
    engine.stage_model(model2().clone()).expect("stages");
    engine.swap_staged().expect("swaps");
    assert_eq!((engine.swaps(), engine.staged_generation()), (1, 1));
}

/// The compiled per-flow registers coalesce into one flow bank; a swap
/// to an identical register set must carry the **whole arena**
/// bit-identically (the fast path copies cache lines, not logical
/// cells), so every lane, counter and feature slot survives exactly.
#[test]
fn swap_carries_bank_arena_bit_identically() {
    let mut engine = EngineBuilder::new(model()).flow_slots(64).build().unwrap();
    for (frame, ts) in schedule_frames(24, 31) {
        engine.ingest(&frame, ts).unwrap();
    }
    let banks: Vec<Vec<u8>> =
        engine.pipeline_registers().banks().iter().map(|b| b.as_bytes().to_vec()).collect();
    assert!(!banks.is_empty(), "compiled registers must have banked");
    assert!(
        banks.iter().any(|b| b.iter().any(|&x| x != 0)),
        "traffic must have left state in the arena"
    );

    engine.stage_model(model().clone()).expect("stages");
    engine.swap_staged().expect("swaps");

    let after: Vec<Vec<u8>> =
        engine.pipeline_registers().banks().iter().map(|b| b.as_bytes().to_vec()).collect();
    assert_eq!(banks, after, "the bank arena must carry bit-identically across the swap");
}

/// Regression: `Engine::reset` must zero the **whole** bank arena —
/// every member cell of every slot *and* the stride padding — not just
/// the registers a partial clear would reach. A reset engine's arena is
/// indistinguishable from a fresh allocation.
#[test]
fn reset_zeroes_whole_bank_arena() {
    let mut engine = EngineBuilder::new(model()).flow_slots(64).build().unwrap();
    for (frame, ts) in schedule_frames(24, 31) {
        engine.ingest(&frame, ts).unwrap();
    }
    assert!(
        engine.pipeline_registers().banks().iter().any(|b| b.as_bytes().iter().any(|&x| x != 0)),
        "traffic must have left state in the arena"
    );

    engine.reset();

    for (i, bank) in engine.pipeline_registers().banks().iter().enumerate() {
        assert!(
            bank.as_bytes().iter().all(|&x| x == 0),
            "bank {i}: reset must zero the entire arena, padding included"
        );
    }
}

/// Swapping with nothing staged is an error and leaves the engine
/// serving.
#[test]
fn swap_without_stage_errors() {
    let mut engine = EngineBuilder::new(model()).flow_slots(64).build().unwrap();
    assert!(engine.swap_staged().is_err());
    assert_eq!(engine.swaps(), 0);
    let flows = generate(DatasetId::D2, 2, 3);
    engine.ingest(&Engine::frame_for(&flows[0], 0), 1_000).expect("still serves");
}

proptest! {
    /// Swapping mid-batch with digests still pending is equivalent to
    /// draining first and then swapping: pending digests survive the
    /// flip and compare-and-release still fires on the **carried**
    /// lanes, so the merged digest stream, every per-packet disposition
    /// and the final lifecycle counters are identical.
    #[test]
    fn swap_mid_batch_equals_drain_then_swap(seed in 0u64..64, frac in 0.1f64..0.9) {
        let frames = schedule_frames(32, 1_000 + seed);
        let split = ((frames.len() as f64 * frac) as usize).clamp(1, frames.len() - 1);

        let run = |drain_before_swap: bool| {
            let mut engine = EngineBuilder::new(model()).flow_slots(32).build().unwrap();
            let mut digests: Vec<Digest> = Vec::new();
            let mut dispositions: Vec<Disposition> = Vec::new();
            for (k, (frame, ts)) in frames.iter().enumerate() {
                if k == split {
                    // Same drain position in both runs; only its order
                    // relative to the swap differs.
                    if drain_before_swap {
                        digests.extend(engine.drain_digests());
                        engine.stage_model(model2().clone()).expect("stages");
                        engine.swap_staged().expect("swaps");
                    } else {
                        engine.stage_model(model2().clone()).expect("stages");
                        engine.swap_staged().expect("swaps");
                        digests.extend(engine.drain_digests());
                    }
                }
                dispositions.push(engine.ingest(frame, *ts).expect("ingests").disposition);
            }
            digests.extend(engine.drain_digests());
            digests.sort_by_key(sort_key);
            (digests, dispositions, engine.lifecycle())
        };

        let (d_mid, o_mid, l_mid) = run(false);
        let (d_drained, o_drained, l_drained) = run(true);
        prop_assert_eq!(d_mid, d_drained, "digest streams diverged");
        prop_assert_eq!(o_mid, o_drained, "dispositions diverged");
        prop_assert_eq!(l_mid, l_drained, "lifecycle counters diverged");
        prop_assert!(l_mid.reconciles(), "lifecycle must reconcile");
    }
}

/// `swap_staged` with a burst wave **in flight** (opened via
/// `stream_push`, never flushed) must quiesce drain-then-flip: the
/// parked packets execute to completion under the old program and their
/// dispositions are carried into the next `stream_report` — identical to
/// an engine that flushed explicitly before swapping.
#[test]
fn swap_quiesces_open_wave_and_carries_stats() {
    use splidt::dataplane::pipeline::WaveStats;
    let frames = schedule_frames(32, 9);
    let split = frames.len() / 2;

    // Reference: flush the wave explicitly, then swap.
    let mut explicit = EngineBuilder::new(model()).flow_slots(64).build().unwrap();
    // Under test: swap with the wave still open.
    let mut implicit = EngineBuilder::new(model()).flow_slots(64).build().unwrap();

    let mut stats_e = WaveStats::default();
    let mut stats_i = WaveStats::default();
    for (k, (frame, ts)) in frames.iter().enumerate() {
        if k == split {
            explicit.stream_flush(&mut stats_e);
            explicit.stage_model(model2().clone()).expect("stages");
            explicit.swap_staged().expect("swaps");
            // No flush here — swap_staged must quiesce on its own.
            implicit.stage_model(model2().clone()).expect("stages");
            implicit.swap_staged().expect("swaps");
        }
        assert!(explicit.stream_push(frame, *ts, &mut stats_e));
        assert!(implicit.stream_push(frame, *ts, &mut stats_i));
    }
    let re = explicit.stream_report(stats_e, 0);
    let ri = implicit.stream_report(stats_i, 0);
    assert_eq!(re.packets, ri.packets, "carried wave stats must surface in the report");
    assert_eq!(re.drops, ri.drops);
    assert_eq!(re.resubmit_limited, ri.resubmit_limited);
    assert_eq!(re.malformed, ri.malformed);
    assert_eq!(explicit.meters(), implicit.meters());
    let mut de: Vec<_> = re.digests.iter().map(sort_key).collect();
    let mut di: Vec<_> = ri.digests.iter().map(sort_key).collect();
    de.sort();
    di.sort();
    assert_eq!(de, di, "digest streams diverged across the implicit quiesce");
}

/// `reset` with an open wave must drain it and discard the outcomes with
/// the rest of the session: no parked packets survive, no carried stats
/// leak into the next report, and the engine replays a schedule exactly
/// like a fresh one.
#[test]
fn reset_quiesces_open_wave() {
    use splidt::dataplane::pipeline::WaveStats;
    let frames = schedule_frames(24, 13);
    let mut engine = EngineBuilder::new(model()).flow_slots(64).build().unwrap();
    let mut pre = WaveStats::default();
    for (frame, ts) in &frames[..frames.len() / 2] {
        engine.stream_push(frame, *ts, &mut pre);
    }
    engine.reset(); // wave still open here

    let mut fresh = EngineBuilder::new(model()).flow_slots(64).build().unwrap();
    let mut sa = WaveStats::default();
    let mut sb = WaveStats::default();
    for (frame, ts) in &frames {
        engine.stream_push(frame, *ts, &mut sa);
        fresh.stream_push(frame, *ts, &mut sb);
    }
    let ra = engine.stream_report(sa, 0);
    let rb = fresh.stream_report(sb, 0);
    assert_eq!(ra.packets, rb.packets, "reset must not carry pre-reset wave stats");
    assert_eq!(ra.drops, rb.drops);
    assert_eq!(ra.resubmit_limited, rb.resubmit_limited);
    assert_eq!(engine.meters(), fresh.meters());
    let mut da: Vec<_> = ra.digests.iter().map(sort_key).collect();
    let mut db: Vec<_> = rb.digests.iter().map(sort_key).collect();
    da.sort();
    db.sort();
    assert_eq!(da, db, "a reset engine must replay like a fresh one");
}
