//! Flow-state lifecycle tests: dynamic admission, idle eviction, slot
//! recycling and live-collision suppression under churn — held
//! observationally equivalent to a software reference flow table, with
//! lifecycle counters that reconcile exactly.

use proptest::prelude::*;
use splidt::dataplane::register::owner_lane;
use splidt::flow::{churn, ChurnConfig, Dir, FiveTuple, TracePacket};
use splidt::prelude::*;
use std::collections::HashMap;
use std::sync::OnceLock;

/// The shared small model (training dominates test time; compilation is
/// per-engine so each test picks its own slots/timeout).
fn model() -> &'static PartitionedTree {
    static MODEL: OnceLock<PartitionedTree> = OnceLock::new();
    MODEL.get_or_init(|| {
        let flows = generate(DatasetId::D2, 160, 21);
        let cfg = SplidtConfig { partitions: vec![2, 2], k: 4, ..Default::default() };
        PartitionedTree::fit(&flows, 4, &cfg).expect("trains")
    })
}

/// Builds a synthetic TCP flow with a chosen tuple and packet count:
/// SYN-opened, FIN-closed, ACKs in between.
fn flow_with(src_ip: u32, src_port: u16, n: usize, gap_us: u64) -> FlowTrace {
    let packets = (0..n as u64)
        .map(|i| TracePacket {
            ts_us: i * gap_us,
            frame_len: 80 + (i as u16 % 5) * 100,
            hdr_len: 58,
            tcp_flags: if i == 0 {
                0x02 // SYN
            } else if i == n as u64 - 1 {
                0x11 // FIN|ACK
            } else {
                0x10 // ACK
            },
            dir: if i % 3 == 2 { Dir::Bwd } else { Dir::Fwd },
        })
        .collect();
    FlowTrace {
        tuple: FiveTuple { src_ip, dst_ip: 0x0b00_0001, src_port, dst_port: 443, proto: 6 },
        packets,
        label: 0,
    }
}

/// Finds two flows hashing to the same register slot (different
/// fingerprints) by scanning source ports.
fn colliding_pair(slots: usize) -> (FlowTrace, FlowTrace) {
    let a = flow_with(0x0a00_0001, 40_000, 12, 500);
    let sa = canonical_flow_index(&a, slots);
    for port in 40_001..u16::MAX {
        let b = flow_with(0x0a00_0002, port, 12, 500);
        if canonical_flow_index(&b, slots) == sa && canonical_flow_fp(&b) != canonical_flow_fp(&a) {
            return (a, b);
        }
    }
    unreachable!("no colliding pair found");
}

/// The software reference flow table: the same lane rules the compiled
/// pipeline executes (probe → claim/refresh/suppress; decide on verdict;
/// controller release on flow-end digests), over plain `HashMap` state.
#[derive(Default)]
struct RefTable {
    /// slot → (fp, last_seen_us32, decided)
    lanes: HashMap<usize, (u64, u64, bool)>,
    admitted: u64,
    evictions_idle: u64,
    takeover_decided: u64,
    live_collisions: u64,
    post_verdict: u64,
    released: u64,
}

impl RefTable {
    /// First-pass probe for a packet of flow (slot, fp) at `now`.
    fn probe(&mut self, slot: usize, fp: u64, now: u64, idle_timeout_us: u64) {
        let now32 = now & 0xFFFF_FFFF;
        match self.lanes.get(&slot).copied() {
            None => {
                self.admitted += 1;
                self.lanes.insert(slot, (fp, now32, false));
            }
            Some((stored, _, decided)) if stored == fp => {
                self.post_verdict += u64::from(decided);
                self.lanes.insert(slot, (fp, now32, decided));
            }
            Some((_, _, true)) => {
                self.admitted += 1;
                self.takeover_decided += 1;
                self.lanes.insert(slot, (fp, now32, false));
            }
            Some((_, ts, false)) => {
                if now32.wrapping_sub(ts) & 0xFFFF_FFFF > idle_timeout_us {
                    self.admitted += 1;
                    self.evictions_idle += 1;
                    self.lanes.insert(slot, (fp, now32, false));
                } else {
                    self.live_collisions += 1;
                }
            }
        }
    }

    /// A verdict digest observed for (slot, fp) at `now`: the decide pass
    /// marks the lane; a flow-end digest additionally releases it (the
    /// controller's compare-and-release).
    fn on_digest(&mut self, slot: usize, fp: u64, now: u64, ended: bool) {
        if let Some(&(stored, _, _)) = self.lanes.get(&slot) {
            if stored == fp {
                if ended {
                    self.lanes.remove(&slot);
                    self.released += 1;
                } else {
                    self.lanes.insert(slot, (fp, now & 0xFFFF_FFFF, true));
                }
            }
        }
    }

    fn active(&self) -> u64 {
        self.lanes.values().filter(|(_, _, d)| !d).count() as u64
    }

    fn decided_pending(&self) -> u64 {
        self.lanes.values().filter(|(_, _, d)| *d).count() as u64
    }
}

/// Drives an interleaved packet schedule through an engine per-frame
/// (draining digests after every packet, as a live controller would) and
/// through the reference table, then asserts lane-for-lane and
/// counter-for-counter equivalence.
fn run_equivalence_case(flows: &[FlowTrace], starts: &[u64], slots: usize, idle_timeout_us: u64) {
    let mut engine = EngineBuilder::new(model())
        .flow_slots(slots)
        .idle_timeout_us(idle_timeout_us)
        .build()
        .expect("compiles");
    let io = engine.io().clone();
    let mut reference = RefTable::default();

    let mut events: Vec<(u64, usize, usize)> = Vec::new();
    for (i, (f, &base)) in flows.iter().zip(starts).enumerate() {
        for (j, p) in f.packets.iter().enumerate() {
            events.push((base + p.ts_us, i, j));
        }
    }
    events.sort_unstable();

    for (ts, i, j) in events {
        let frame = Engine::frame_for(&flows[i], j);
        engine.ingest(&frame, ts).expect("ingests");
        reference.probe(
            canonical_flow_index(&flows[i], slots),
            canonical_flow_fp(&flows[i]),
            ts,
            idle_timeout_us,
        );
        for d in engine.drain_digests() {
            reference.on_digest(
                d.values[io.digest_flow_idx] as usize,
                d.values[io.digest_fp],
                d.ts_us,
                d.values[io.digest_final] == 1,
            );
        }
    }

    // Lane-for-lane equivalence against the live ownership registers.
    let lane_regs = engine.pipeline_registers();
    for slot in 0..slots {
        let cell = lane_regs.read(io.owner_reg.index(), slot);
        match reference.lanes.get(&slot) {
            None => prop_assert_eq!(cell, owner_lane::FREE, "slot {} should be free", slot),
            Some(&(fp, ts, decided)) => {
                prop_assert_eq!(owner_lane::fp(cell), fp, "slot {} fp diverged", slot);
                prop_assert_eq!(owner_lane::last_seen_us(cell), ts, "slot {} ts diverged", slot);
                prop_assert_eq!(owner_lane::decided(cell), decided, "slot {} flag diverged", slot);
            }
        }
    }
    let regs = engine.lifecycle();
    prop_assert!(regs.reconciles(), "engine counters must reconcile: {regs:?}");
    prop_assert_eq!(regs.active_flows, reference.active(), "active lanes diverged");
    prop_assert_eq!(regs.decided_pending, reference.decided_pending(), "decided lanes diverged");
    prop_assert_eq!(
        regs.admitted,
        reference.admitted,
        "admissions diverged (ref: {:?})",
        reference.lanes
    );
    prop_assert_eq!(regs.evictions_idle, reference.evictions_idle, "idle evictions diverged");
    prop_assert_eq!(
        regs.takeovers,
        reference.evictions_idle + reference.takeover_decided,
        "takeovers diverged"
    );
    prop_assert_eq!(
        regs.evictions_decided,
        reference.takeover_decided + reference.released,
        "decided evictions diverged"
    );
    prop_assert_eq!(regs.live_collisions, reference.live_collisions, "collisions diverged");
    prop_assert_eq!(regs.post_verdict_pkts, reference.post_verdict, "post-verdict diverged");
    prop_assert_eq!(
        reference.admitted,
        reference.active()
            + reference.decided_pending()
            + reference.evictions_idle
            + reference.takeover_decided
            + reference.released,
        "reference must reconcile too"
    );
}

proptest! {
    /// Under random churn schedules (tiny slot count forcing collisions,
    /// random timeline compression, random idle timeouts) the compiled
    /// lifecycle stays observationally equivalent to the software
    /// reference flow table, and every counter reconciles.
    #[test]
    fn churn_lifecycle_equals_reference_table(seed in 0u64..24) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let n_flows = rng.random_range(6usize..14);
        let slots = 16usize;
        let idle_timeout_us = [30_000u64, 120_000][rng.random_range(0usize..2)];
        let mut flows = generate(DatasetId::D2, n_flows, 1000 + seed);
        // Random timeline compression so lifetimes, gaps and timeouts
        // interleave in varied ways.
        for f in &mut flows {
            let scale = rng.random_range(0.01f64..0.3);
            for p in &mut f.packets {
                p.ts_us = ((p.ts_us as f64) * scale) as u64;
            }
        }
        let starts: Vec<u64> =
            (0..n_flows).map(|i| 1_000 + i as u64 * rng.random_range(1_000u64..60_000)).collect();
        run_equivalence_case(&flows, &starts, slots, idle_timeout_us);
    }
}

/// Deterministic idle eviction: a silent owner forfeits its slot, and its
/// late packets are suppressed as live collisions against the new owner.
#[test]
fn idle_owner_is_evicted_and_late_packets_suppressed() {
    let slots = 16;
    let timeout = 50_000u64;
    let (a, b) = colliding_pair(slots);
    let mut engine =
        EngineBuilder::new(model()).flow_slots(slots).idle_timeout_us(timeout).build().unwrap();

    // A sends three packets then goes silent.
    for j in 0..3 {
        engine.ingest(&Engine::frame_for(&a, j), 1_000 + a.packets[j].ts_us).unwrap();
    }
    let lc = engine.lifecycle();
    assert_eq!(lc.admitted, 1);
    assert_eq!(lc.active_flows, 1);

    // B arrives after the timeout: takes the slot over in-pass.
    let b_base = 1_000 + a.packets[2].ts_us + timeout + 1_000;
    for j in 0..3 {
        engine.ingest(&Engine::frame_for(&b, j), b_base + b.packets[j].ts_us).unwrap();
    }
    let lc = engine.lifecycle();
    assert_eq!(lc.admitted, 2);
    assert_eq!(lc.evictions_idle, 1);
    assert_eq!(lc.takeovers, 1);
    assert_eq!(lc.active_flows, 1, "one live owner after the takeover");

    // A limps back while B is live: counted + suppressed, never merged.
    engine.ingest(&Engine::frame_for(&a, 3), b_base + 2_000).unwrap();
    let lc = engine.lifecycle();
    assert_eq!(lc.live_collisions, 1);
    assert_eq!(lc.admitted, 2, "the suppressed packet must not re-admit");
    assert!(lc.reconciles(), "{lc:?}");
}

/// Deterministic in-band decided takeover: a flow that finished inside
/// the batch frees its slot for the next colliding flow *without* any
/// controller involvement, and both flows classify.
#[test]
fn decided_slot_is_recycled_in_band() {
    let slots = 16;
    let (a, b) = colliding_pair(slots);
    let mut engine = EngineBuilder::new(model()).flow_slots(slots).build().unwrap();
    let io = engine.io().clone();

    // One batch: all of A (reaches its flow-end verdict), then all of B.
    // Digests drain only at batch end, so B's first packet meets a
    // decided — not released — lane.
    let mut frames: Vec<(Vec<u8>, u64)> = Vec::new();
    let mut t = 1_000;
    for j in 0..a.packets.len() {
        frames.push((Engine::frame_for(&a, j), t + a.packets[j].ts_us));
    }
    t += a.packets.last().unwrap().ts_us + 1_000;
    for j in 0..b.packets.len() {
        frames.push((Engine::frame_for(&b, j), t + b.packets[j].ts_us));
    }
    let report = engine.ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts))).unwrap();

    let classified: std::collections::HashSet<(u64, u64)> = report
        .digests
        .iter()
        .map(|d| (d.values[io.digest_flow_idx], d.values[io.digest_fp]))
        .collect();
    assert_eq!(classified.len(), 2, "both colliding flows must classify");
    let lc = engine.lifecycle();
    assert_eq!(lc.admitted, 2);
    assert_eq!(lc.takeovers, 1, "B reclaimed A's decided slot in-band");
    assert!(lc.evictions_decided >= 1);
    assert_eq!(lc.live_collisions, 0);
    assert!(lc.reconciles(), "{lc:?}");
}

/// Acceptance (scaled to debug-test budget): an engine with bounded
/// register memory classifies ≥ 8× `flow_slots` distinct flows in one
/// run, with counters that reconcile exactly. The full-size version
/// (256 slots, 4096 flows) is gated in CI by `churn_smoke`.
#[test]
fn bounded_slots_classify_8x_distinct_flows() {
    let slots = 64usize;
    // Same slot load factor as the full-size churn_smoke fixture (~0.1
    // concurrent flows per slot): 64 slots get 4x the arrival gap that
    // 256 slots run with.
    let schedule = churn(
        DatasetId::D2,
        &ChurnConfig {
            flows: 1024,
            mean_arrival_gap_us: 2_000,
            lifetime_scale: 0.05,
            seed: 11,
            ..Default::default()
        },
    );
    let mut engine =
        EngineBuilder::new(model()).flow_slots(slots).idle_timeout_us(100_000).build().unwrap();
    let io = engine.io().clone();
    let frames: Vec<(Vec<u8>, u64)> = schedule
        .events()
        .into_iter()
        .map(|(ts, i, j)| (Engine::frame_for(&schedule.flows[i], j), ts))
        .collect();
    let report = engine.ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts))).unwrap();

    let classified: std::collections::HashSet<(u64, u64)> = report
        .digests
        .iter()
        .map(|d| (d.values[io.digest_flow_idx], d.values[io.digest_fp]))
        .collect();
    assert!(
        classified.len() >= 8 * slots,
        "only {} distinct flows classified over {} slots",
        classified.len(),
        slots
    );
    let lc = engine.lifecycle();
    assert!(lc.reconciles(), "{lc:?}");
    assert!(lc.admitted >= 8 * slots as u64);
    assert!(lc.takeovers > 0, "slots must actually recycle");
}

// ------------------------------------------------- protocol-aware policy

/// SYN-only admission: pure-ACK scan traffic (mid-capture tails,
/// backscatter) admits **nothing** under the TCP-aware policy — every
/// packet is counted `unsolicited` and suppressed, and the per-slot
/// pressure register carries the same total.
#[test]
fn pure_ack_scan_traffic_admits_nothing() {
    let slots = 64;
    let mut engine = EngineBuilder::new(model())
        .flow_slots(slots)
        .lifecycle_policy(LifecyclePolicy::tcp())
        .build()
        .unwrap();
    // A horizontal scan: many distinct tuples, one bare ACK each — plus a
    // few repeats, none of which ever carries SYN.
    let mut packets = 0u64;
    for i in 0..40u32 {
        let mut f = flow_with(0x0a00_0100 + i, 42_000 + i as u16, 3, 500);
        for p in &mut f.packets {
            p.tcp_flags = 0x10; // ACK only
        }
        for j in 0..f.packets.len() {
            engine.ingest(&Engine::frame_for(&f, j), 1_000 + j as u64 * 500).unwrap();
            packets += 1;
        }
    }
    let lc = engine.lifecycle();
    assert_eq!(lc.admitted, 0, "no SYN, no slot: {lc:?}");
    assert_eq!(lc.active_flows, 0);
    assert_eq!(lc.unsolicited, packets);
    assert_eq!(lc.live_collisions, 0);
    assert!(lc.reconciles(), "{lc:?}");
    // Every refusal registered as per-slot pressure.
    let pressure = engine.slot_pressure();
    assert_eq!(pressure.total, packets);
    assert!(pressure.peak() > 0);
    assert_eq!(
        pressure.histogram.iter().sum::<u64>(),
        slots as u64,
        "histogram buckets cover every slot"
    );
    // No digests: nothing was admitted, nothing classified.
    assert!(engine.drain_digests().is_empty());
}

/// In-band FIN release: a flow that closes with FIN has its lane freed on
/// the verdict pass itself — before any digest drains — and the next
/// colliding flow claims the slot as a *free* lane, not a takeover.
#[test]
fn fin_release_frees_slot_for_immediate_reuse() {
    let slots = 16;
    let (a, b) = colliding_pair(slots);
    let mut engine = EngineBuilder::new(model())
        .flow_slots(slots)
        .lifecycle_policy(LifecyclePolicy::tcp())
        .build()
        .unwrap();
    let io = engine.io().clone();
    let slot = canonical_flow_index(&a, slots);

    // All of A (SYN-opened, FIN-closed). No digests drained yet.
    for j in 0..a.packets.len() {
        engine.ingest(&Engine::frame_for(&a, j), 1_000 + a.packets[j].ts_us).unwrap();
    }
    let lc = engine.lifecycle();
    assert_eq!(lc.admitted, 1);
    assert_eq!(lc.released_fin, 1, "FIN verdict must release in-band: {lc:?}");
    assert_eq!(lc.decided_pending, 0, "no decided parking on the FIN path");
    assert!(lc.reconciles(), "{lc:?}");
    let lane = engine.pipeline_registers().read(io.owner_reg.index(), slot);
    assert_eq!(lane, owner_lane::FREE, "lane must be free before any drain");

    // B collides into the same slot: a plain free-lane claim.
    let b_base = 1_000 + a.packets.last().unwrap().ts_us + 2_000;
    for j in 0..b.packets.len() {
        engine.ingest(&Engine::frame_for(&b, j), b_base + b.packets[j].ts_us).unwrap();
    }
    let lc = engine.lifecycle();
    assert_eq!(lc.admitted, 2);
    assert_eq!(lc.takeovers, 0, "reuse after FIN release is not a takeover");
    assert_eq!(lc.released_fin, 2, "B closed with FIN too");
    assert!(lc.reconciles(), "{lc:?}");

    // Both flows classified exactly once.
    let classified: std::collections::HashSet<(u64, u64)> = engine
        .drain_digests()
        .iter()
        .map(|d| (d.values[io.digest_flow_idx], d.values[io.digest_fp]))
        .collect();
    assert_eq!(classified.len(), 2);
}

/// Pinned-class lanes survive the ordinary idle timeout: collisions are
/// defended until `pinned_timeout_us`, after which the slot finally
/// recycles (counted separately as a pinned eviction).
#[test]
fn pinned_class_lane_survives_idle_timeout() {
    let slots = 16;
    let idle = 50_000u64;
    let pinned_timeout = 400_000u64;
    let (a, b) = colliding_pair(slots);
    // Pin whatever class the model assigns to A, so A's verdict pins its
    // lane (dataplane == software agreement makes this deterministic).
    let pinned_class = model().classify_flow(&a).class;
    let mut engine = EngineBuilder::new(model())
        .flow_slots(slots)
        .idle_timeout_us(idle)
        .lifecycle_policy(
            LifecyclePolicy::tcp().pin_class(pinned_class).pinned_timeout_us(pinned_timeout),
        )
        .build()
        .unwrap();
    let io = engine.io().clone();
    let slot = canonical_flow_index(&a, slots);

    // A completes — its FIN would release the lane, but the pinned class
    // wins: the lane parks decided + pinned.
    for j in 0..a.packets.len() {
        engine.ingest(&Engine::frame_for(&a, j), 1_000 + a.packets[j].ts_us).unwrap();
    }
    let a_end = 1_000 + a.packets.last().unwrap().ts_us;
    let lc = engine.lifecycle();
    assert_eq!(lc.released_fin, 0, "pinned verdicts must not release on FIN");
    assert_eq!(lc.decided_pending, 1);
    assert_eq!(lc.pinned_pending, 1);
    let cell = engine.pipeline_registers().read(io.owner_reg.index(), slot);
    assert!(owner_lane::decided(cell) && owner_lane::pinned(cell));
    assert_eq!(owner_lane::class(cell), u64::from(pinned_class));

    // The controller's digest drain must not release a pinned lane.
    engine.drain_digests();
    assert_eq!(engine.lifecycle().pinned_pending, 1, "drain released a pinned lane");

    // B's SYN arrives well past the *idle* timeout but inside the pinned
    // timeout: the lane defends, B is not admitted.
    let b_base = a_end + idle + 10_000;
    assert!(b_base < a_end + pinned_timeout);
    engine.ingest(&Engine::frame_for(&b, 0), b_base).unwrap();
    let lc = engine.lifecycle();
    assert_eq!(lc.admitted, 1, "pinned lane must defend: {lc:?}");
    assert!(lc.pinned_defended >= 1);
    assert!(lc.reconciles(), "{lc:?}");

    // Past the pinned timeout the slot finally recycles.
    let late = a_end + pinned_timeout + 10_000;
    engine.ingest(&Engine::frame_for(&b, 0), late).unwrap();
    let lc = engine.lifecycle();
    assert_eq!(lc.admitted, 2, "pinned timeout must finally yield: {lc:?}");
    assert_eq!(lc.evictions_pinned, 1);
    assert_eq!(lc.pinned_pending, 0);
    assert!(lc.reconciles(), "{lc:?}");
}

/// Explicit operator release of a pinned lane frees the slot immediately
/// and keeps the counters reconciled.
#[test]
fn operator_release_frees_pinned_lane() {
    let slots = 16;
    let a = flow_with(0x0a00_0001, 40_000, 12, 500);
    let pinned_class = model().classify_flow(&a).class;
    let mut engine = EngineBuilder::new(model())
        .flow_slots(slots)
        .lifecycle_policy(LifecyclePolicy::tcp().pin_class(pinned_class))
        .build()
        .unwrap();
    let slot = canonical_flow_index(&a, slots);
    for j in 0..a.packets.len() {
        engine.ingest(&Engine::frame_for(&a, j), 1_000 + a.packets[j].ts_us).unwrap();
    }
    assert_eq!(engine.lifecycle().pinned_pending, 1);
    assert!(!engine.release_pinned((slot + 1) % slots), "wrong slot: no-op");
    assert!(!engine.release_pinned(slot + slots), "out of range: no-op, never wraps");
    assert_eq!(engine.lifecycle().pinned_pending, 1, "bad slots must not release anything");
    assert!(engine.release_pinned(slot));
    assert!(!engine.release_pinned(slot), "already free: no-op");
    let lc = engine.lifecycle();
    assert_eq!(lc.pinned_pending, 0);
    assert_eq!(lc.evictions_pinned, 1);
    assert!(lc.reconciles(), "{lc:?}");

    // The sharded twin addresses (shard, slot) pairs.
    let mut sharded = EngineBuilder::new(model())
        .flow_slots(slots)
        .lifecycle_policy(LifecyclePolicy::tcp().pin_class(pinned_class))
        .build_sharded(2)
        .unwrap();
    sharded.run(std::slice::from_ref(&a)).unwrap();
    assert_eq!(sharded.lifecycle().pinned_pending, 1);
    let shard = canonical_flow_index(&a, slots) % 2;
    let shard_slot = canonical_flow_index(&a, slots);
    assert!(!sharded.release_pinned(99, shard_slot), "bad shard: no-op");
    assert!(sharded.release_pinned(shard, shard_slot));
    assert_eq!(sharded.lifecycle().pinned_pending, 0);
    assert!(sharded.lifecycle().reconciles());
}

/// Ownership lanes read back through the register file agree with the
/// canonical fingerprint helpers (the controller-visible view).
#[test]
fn lanes_carry_canonical_fingerprints() {
    let slots = 1 << 10;
    let f = flow_with(0x0a00_0009, 41_000, 12, 500);
    let mut engine = EngineBuilder::new(model()).flow_slots(slots).build().unwrap();
    engine.ingest(&Engine::frame_for(&f, 0), 1_000).unwrap();
    let io = engine.io().clone();
    let slot = canonical_flow_index(&f, slots);
    let cell = engine.pipeline_registers().read(io.owner_reg.index(), slot);
    assert_eq!(owner_lane::fp(cell), canonical_flow_fp(&f));
    assert!(!owner_lane::decided(cell));
    assert_eq!(owner_lane::last_seen_us(cell), 1_000);
}
