//! Network-ingress subsystem tests: ring backpressure (drop-and-count,
//! never block), graceful shutdown (close → drain → report, no digest
//! loss), exact accounting reconciliation against malformed input, and
//! the sharded engine's pre-dispatch malformed counting.

use splidt::flow::{churn, frame_for, ChurnConfig};
use splidt::net::{ring, run_ingress, IngressConfig, PushError, ReplaySource};
use splidt::prelude::*;
use std::sync::OnceLock;

/// The shared small model (training dominates test time).
fn model() -> &'static PartitionedTree {
    static MODEL: OnceLock<PartitionedTree> = OnceLock::new();
    MODEL.get_or_init(|| {
        let flows = generate(DatasetId::D2, 160, 21);
        let cfg = SplidtConfig { partitions: vec![2, 2], k: 4, ..Default::default() };
        PartitionedTree::fit(&flows, 4, &cfg).expect("trains")
    })
}

fn sharded(n: usize) -> ShardedEngine {
    EngineBuilder::new(model())
        .flow_slots(256)
        .idle_timeout_us(100_000)
        .lifecycle_policy(LifecyclePolicy::tcp())
        .build_sharded(n)
        .expect("compiles")
}

/// A modest churn schedule serialized to wire frames in timeline order.
fn wire_frames(flows: usize, seed: u64) -> Vec<(Vec<u8>, u64)> {
    let schedule = churn(
        DatasetId::D2,
        &ChurnConfig {
            flows,
            mean_arrival_gap_us: 500,
            lifetime_scale: 0.05,
            syn_open_frac: 0.95,
            rst_close_frac: 0.25,
            seed,
            ..Default::default()
        },
    );
    schedule.events().into_iter().map(|(ts, i, j)| (frame_for(&schedule.flows[i], j), ts)).collect()
}

#[test]
fn full_ring_drops_and_counts_without_blocking() {
    // No consumer ever drains: every push past capacity must fail fast.
    let (mut tx, rx) = ring(8, 2048);
    let frames = wire_frames(4, 5);
    let mut pushed = 0u64;
    let mut refused = 0u64;
    for (frame, ts) in &frames {
        match tx.try_push(frame, *ts) {
            Ok(()) => pushed += 1,
            Err(PushError::Full) => refused += 1,
            Err(PushError::TooLong) => panic!("fixture frames fit the slots"),
        }
    }
    assert_eq!(pushed, 8, "exactly capacity frames accepted");
    assert_eq!(refused, frames.len() as u64 - 8, "every excess frame refused, none lost track of");
    drop(rx);
}

#[test]
fn ingress_accounting_reconciles_with_malformed_input_mixed_in() {
    let mut engine = sharded(2);
    let mut frames = wire_frames(48, 9);
    // Inject garbage the steering peek must reject: truncated runts and a
    // non-IPv4 ethertype, spread through the timeline.
    let n_bad = 7usize;
    for k in 0..n_bad {
        let pos = k * frames.len() / n_bad;
        let bad = match k % 3 {
            0 => vec![0u8; 9],                 // runt
            1 => vec![0xFFu8; 40],             // bogus ethertype
            _ => frames[pos].0[..20].to_vec(), // truncated mid-header
        };
        let ts = frames[pos].1;
        frames.insert(pos, (bad, ts));
    }
    let total = frames.len() as u64;

    // Rings sized to the whole replay: an in-memory source is not paced,
    // so drop-freedom must come from capacity, not from scheduling luck.
    let cfg = IngressConfig {
        ring_capacity: frames.len(),
        max_frame: 2048,
        batch: 256,
        ..IngressConfig::default()
    };
    let outcome = run_ingress(&mut engine, ReplaySource::new(frames), &cfg).unwrap();
    let stats = &outcome.stats;
    assert_eq!(stats.received, total);
    assert_eq!(stats.dropped_malformed, n_bad as u64);
    assert_eq!(stats.dropped_ring_full, 0, "replay source cannot outrun the consumers");
    assert!(stats.reconciles(), "exact reconciliation: {stats:?}");
    assert_eq!(
        outcome.report.ingress.as_ref(),
        Some(stats),
        "runtime report carries the ingress accounting"
    );
    // Every steered frame reached a pipeline: ingress accounting balances
    // against pipeline outcomes end-to-end.
    assert_eq!(outcome.batch.packets + outcome.batch.malformed, stats.steered);
    assert_eq!(outcome.batch.malformed, 0, "receiver already filtered malformed frames");
}

#[test]
fn shutdown_drains_rings_with_no_digest_loss() {
    // Reference: the same frames through ShardedEngine::ingest_batch
    // directly (no rings, no threads hand-off).
    let frames = wire_frames(64, 13);
    let mut reference = sharded(2);
    let ref_report = reference.ingest_batch(&frames).unwrap();

    let mut engine = sharded(2);
    // Rings hold the whole replay (no pacing → capacity is the only
    // drop-freedom guarantee); a tiny batch forces many drain cycles and
    // the final close must still account for *every* frame.
    let cfg = IngressConfig {
        ring_capacity: frames.len(),
        max_frame: 2048,
        batch: 3,
        ..IngressConfig::default()
    };
    let outcome = run_ingress(&mut engine, ReplaySource::new(frames), &cfg).unwrap();

    assert!(outcome.stats.reconciles());
    assert_eq!(outcome.stats.dropped_ring_full, 0);
    assert_eq!(outcome.batch.packets, ref_report.packets);
    // Digest multisets match exactly: nothing stranded in a ring at
    // shutdown, nothing double-consumed. (Order differs: shards drain on
    // independent threads.)
    let mut got: Vec<_> = outcome.batch.digests.iter().map(|d| d.values.clone()).collect();
    let mut want: Vec<_> = ref_report.digests.iter().map(|d| d.values.clone()).collect();
    got.sort_unstable();
    want.sort_unstable();
    assert_eq!(got, want, "graceful shutdown loses no digests");
}

#[test]
fn backpressure_overrun_is_counted_not_fatal() {
    // One slot per ring and single-frame batches with 2 shards: the
    // receiver steers the whole replay while consumers crawl, so some
    // frames MUST hit a full ring — and the accounting must still balance.
    let frames = wire_frames(32, 17);
    let total = frames.len() as u64;
    let mut engine = sharded(2);
    let cfg =
        IngressConfig { ring_capacity: 1, max_frame: 2048, batch: 1, ..IngressConfig::default() };
    let outcome = run_ingress(&mut engine, ReplaySource::new(frames), &cfg).unwrap();
    let stats = &outcome.stats;
    assert!(stats.reconciles(), "drops under pressure still reconcile: {stats:?}");
    assert_eq!(stats.received, total);
    assert_eq!(stats.steered + stats.dropped_ring_full, total);
    // The run completes and classifies what got through.
    assert_eq!(outcome.batch.packets, stats.steered);
}

#[test]
fn sharded_ingest_counts_predispatch_malformed_frames() {
    // Satellite (b): garbage fed straight to ShardedEngine::ingest_batch
    // (no ingress front-end) must be counted in the merged BatchReport,
    // not silently dropped during shard bucketing.
    let mut frames = wire_frames(8, 23);
    frames.insert(3, (vec![0u8; 12], frames[3].1));
    frames.insert(7, (vec![0xEEu8; 30], frames[7].1));
    let total = frames.len() as u64;
    let mut engine = sharded(2);
    let report = engine.ingest_batch(&frames).unwrap();
    assert_eq!(report.malformed, 2, "pre-dispatch rejects are counted");
    assert_eq!(report.packets, total - 2);
}
