//! Property-based tests over the reproduction's core invariants.

use proptest::prelude::*;
use splidt::dt::{train_classifier, Dataset, TrainParams};
use splidt::flow::window_bounds;
use splidt::ranging::{generate_rules, range_to_prefixes, ThermometerEncoder};

proptest! {
    /// Prefix covers are exact and disjoint for arbitrary ranges.
    #[test]
    fn prefix_cover_exact(lo in 0u64..4096, span in 0u64..4096, probe in 0u64..65536) {
        let hi = (lo + span).min(65535);
        let prefixes = range_to_prefixes(lo, hi, 16);
        let hits = prefixes.iter().filter(|p| p.matches(probe)).count();
        let inside = probe >= lo && probe <= hi;
        prop_assert_eq!(hits, usize::from(inside));
    }

    /// Thermometer marks are monotone in the value and agree with the
    /// elementary-range table.
    #[test]
    fn thermometer_monotone(mut ts in proptest::collection::vec(0u64..1000, 1..12), v in 0u64..1024) {
        ts.sort_unstable();
        let enc = ThermometerEncoder::new(ts, 16);
        let m1 = enc.mark_of(v);
        let m2 = enc.mark_of(v + 1);
        prop_assert!(m2 >= m1, "marks must be monotone");
        let range = enc
            .elementary_ranges()
            .into_iter()
            .find(|r| r.lo <= v && v <= r.hi)
            .expect("ranges cover domain");
        prop_assert_eq!(range.mark, m1);
    }

    /// Range-Marking rules reproduce the tree exactly on random integer
    /// datasets (the TCAM encoding is lossless).
    #[test]
    fn rules_equal_tree(seed in 0u64..500) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 120;
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let r: Vec<f32> = (0..4).map(|_| rng.random_range(0..5000) as f32).collect();
            let y = (u16::from(r[0] > 2000.0) + 2 * u16::from(r[1] > 900.0)) % 3;
            rows.push(r);
            labels.push(y);
        }
        let ds = Dataset::from_rows(&rows, &labels, None).unwrap();
        let tree = train_classifier(&ds, &TrainParams { max_depth: 5, ..Default::default() });
        let rules = generate_rules(&tree, 24);
        for _ in 0..50 {
            let probe: Vec<f32> = (0..4).map(|_| rng.random_range(0..(1 << 20)) as f32).collect();
            prop_assert_eq!(rules.classify(&probe), Some(tree.predict(&probe)));
        }
    }

    /// Window bounds partition every flow for every partition count.
    #[test]
    fn windows_partition(n in 1usize..600, p in 1usize..8) {
        let w = window_bounds(n, p);
        prop_assert_eq!(w[0].0, 0);
        prop_assert_eq!(w.last().unwrap().1, n);
        for pair in w.windows(2) {
            prop_assert_eq!(pair[0].1, pair[1].0);
        }
        prop_assert!(w.len() <= p);
    }

    /// The distinct-feature budget holds for arbitrary budgets and depths.
    #[test]
    fn feature_budget_respected(seed in 0u64..200, k in 1usize..5, depth in 1usize..7) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..150 {
            let r: Vec<f32> = (0..8).map(|_| rng.random_range(0..100) as f32).collect();
            let y = ((r[0] as u16 / 25) + (r[3] as u16 / 30)) % 4;
            rows.push(r);
            labels.push(y);
        }
        let ds = Dataset::from_rows(&rows, &labels, None).unwrap();
        let tree = train_classifier(
            &ds,
            &TrainParams { max_depth: depth, feature_budget: Some(k), ..Default::default() },
        );
        prop_assert!(tree.features_used().len() <= k);
        prop_assert!(tree.depth() <= depth);
    }
}
