//! Property-based tests over the reproduction's core invariants.

use proptest::prelude::*;
use splidt::dataplane::action::{Action, AluOp, AluOut, OwnerMode, Primitive, Source};
use splidt::dataplane::phv::FieldId;
use splidt::dataplane::pipeline::Pipeline;
use splidt::dataplane::program::{Program, ProgramBuilder};
use splidt::dataplane::register::RegisterSpec;
use splidt::dataplane::table::TableSpec;
use splidt::dataplane::tcam::Ternary;
use splidt::dt::{train_classifier, Dataset, TrainParams};
use splidt::flow::window_bounds;
use splidt::ranging::{generate_rules, range_to_prefixes, ThermometerEncoder};

/// Builds a random small pipeline program: 1–3 stages, 1–2 tables per
/// stage (exact, ternary or range), one register per stage, and entries
/// whose actions draw from the full primitive set (arithmetic, register
/// RMW, digest, resubmit, drop). Returns the program and its metadata
/// fields.
fn random_program(rng: &mut rand::rngs::SmallRng) -> (Program, Vec<FieldId>) {
    use rand::Rng;
    let mut b = ProgramBuilder::new();
    let widths = [8u8, 16, 16];
    let fields: Vec<FieldId> =
        widths.iter().enumerate().map(|(i, &w)| b.add_meta(format!("f{i}"), w)).collect();
    b.set_digest_fields(vec![fields[0], fields[1]]);
    b.set_resubmit_limit(3);
    let n_stages = rng.random_range(1usize..4);
    let regs: Vec<_> = (0..n_stages)
        .map(|s| b.add_register(RegisterSpec::new(format!("r{s}"), 16, 16), s))
        .collect();

    let random_action = |rng: &mut rand::rngs::SmallRng, stage: usize| -> Action {
        let mut a = Action::new("a");
        for _ in 0..rng.random_range(0usize..4) {
            let dst = fields[rng.random_range(0usize..fields.len())];
            let src = |rng: &mut rand::rngs::SmallRng| {
                if rng.random::<bool>() {
                    Source::Const(rng.random_range(0u64..64))
                } else {
                    Source::Field(fields[rng.random_range(0usize..fields.len())])
                }
            };
            let p = match rng.random_range(0u8..11) {
                0 => Primitive::Set { dst, src: src(rng) },
                1 => Primitive::Add { dst, a: src(rng), b: src(rng) },
                2 => Primitive::Sub { dst, a: src(rng), b: src(rng) },
                3 => Primitive::Min { dst, a: src(rng), b: src(rng) },
                4 => Primitive::Max { dst, a: src(rng), b: src(rng) },
                5 => Primitive::DivConst { dst, a: src(rng), divisor: rng.random_range(1u64..8) },
                6 | 7 => Primitive::RegRmw {
                    reg: regs[stage],
                    index: Source::Const(rng.random_range(0u64..16)),
                    op: [AluOp::Add, AluOp::Write, AluOp::Max, AluOp::Read]
                        [rng.random_range(0usize..4)],
                    operand: src(rng),
                    out: if rng.random::<bool>() {
                        Some((dst, if rng.random::<bool>() { AluOut::Old } else { AluOut::New }))
                    } else {
                        None
                    },
                },
                8 => Primitive::Digest,
                10 => {
                    let idle = rng.random_range(0u64..32);
                    Primitive::OwnerUpdate {
                        reg: regs[stage],
                        index: Source::Const(rng.random_range(0u64..16)),
                        fp: src(rng),
                        now: src(rng),
                        idle_timeout_us: idle,
                        pinned_timeout_us: idle + rng.random_range(0u64..32),
                        mode: if rng.random::<bool>() {
                            OwnerMode::Probe
                        } else {
                            OwnerMode::Decide
                        },
                        claim: rng.random::<bool>(),
                        release: rng.random::<bool>(),
                        pin: rng.random::<bool>(),
                        class: src(rng),
                        state_out: dst,
                    }
                }
                _ => {
                    if rng.random_range(0u8..4) == 0 {
                        Primitive::Drop
                    } else {
                        Primitive::Resubmit
                    }
                }
            };
            a = a.with(p);
        }
        a
    };

    for stage in 0..n_stages {
        for t in 0..rng.random_range(1usize..3) {
            let key: Vec<FieldId> = (0..rng.random_range(1usize..3))
                .map(|_| fields[rng.random_range(0usize..fields.len())])
                .collect();
            let n_entries = rng.random_range(1usize..4);
            let tid = match rng.random_range(0u8..3) {
                0 => {
                    let tid = b.add_table(
                        TableSpec::exact(format!("e{stage}_{t}"), key.clone(), 8),
                        stage,
                    );
                    for _ in 0..n_entries {
                        let vals: Vec<u64> =
                            key.iter().map(|_| rng.random_range(0u64..4)).collect();
                        let action = random_action(rng, stage);
                        // Duplicate exact keys are now rejected at install
                        // (the shadowing bugfix); the generator just skips
                        // the colliding draw, as a controller would.
                        let _ = b.add_exact_entry(tid, vals, action);
                    }
                    tid
                }
                1 => {
                    let tid = b.add_table(
                        TableSpec::ternary(format!("t{stage}_{t}"), key.clone(), 8),
                        stage,
                    );
                    for _ in 0..n_entries {
                        let pats: Vec<Ternary> = key
                            .iter()
                            .map(|_| {
                                if rng.random::<bool>() {
                                    Ternary::ANY
                                } else {
                                    Ternary::exact(rng.random_range(0u64..4), 8)
                                }
                            })
                            .collect();
                        let prio = rng.random_range(0u32..10);
                        let action = random_action(rng, stage);
                        b.add_ternary_entry(tid, pats, prio, action).unwrap();
                    }
                    tid
                }
                _ => {
                    let tid = b.add_table(
                        TableSpec::range(format!("r{stage}_{t}"), key.clone(), 8),
                        stage,
                    );
                    for _ in 0..n_entries {
                        let ranges: Vec<(u64, u64)> = key
                            .iter()
                            .map(|_| {
                                let lo = rng.random_range(0u64..6);
                                (lo, lo + rng.random_range(0u64..4))
                            })
                            .collect();
                        let prio = rng.random_range(0u32..10);
                        let action = random_action(rng, stage);
                        b.add_range_entry(tid, ranges, prio, action).unwrap();
                    }
                    tid
                }
            };
            if rng.random::<bool>() {
                let d = random_action(rng, stage);
                b.set_default(tid, d);
            }
        }
    }
    (b.build().unwrap(), fields)
}

proptest! {
    /// Prefix covers are exact and disjoint for arbitrary ranges.
    #[test]
    fn prefix_cover_exact(lo in 0u64..4096, span in 0u64..4096, probe in 0u64..65536) {
        let hi = (lo + span).min(65535);
        let prefixes = range_to_prefixes(lo, hi, 16);
        let hits = prefixes.iter().filter(|p| p.matches(probe)).count();
        let inside = probe >= lo && probe <= hi;
        prop_assert_eq!(hits, usize::from(inside));
    }

    /// Thermometer marks are monotone in the value and agree with the
    /// elementary-range table.
    #[test]
    fn thermometer_monotone(mut ts in proptest::collection::vec(0u64..1000, 1..12), v in 0u64..1024) {
        ts.sort_unstable();
        let enc = ThermometerEncoder::new(ts, 16);
        let m1 = enc.mark_of(v);
        let m2 = enc.mark_of(v + 1);
        prop_assert!(m2 >= m1, "marks must be monotone");
        let range = enc
            .elementary_ranges()
            .into_iter()
            .find(|r| r.lo <= v && v <= r.hi)
            .expect("ranges cover domain");
        prop_assert_eq!(range.mark, m1);
    }

    /// Range-Marking rules reproduce the tree exactly on random integer
    /// datasets (the TCAM encoding is lossless).
    #[test]
    fn rules_equal_tree(seed in 0u64..500) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 120;
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..n {
            let r: Vec<f32> = (0..4).map(|_| rng.random_range(0..5000) as f32).collect();
            let y = (u16::from(r[0] > 2000.0) + 2 * u16::from(r[1] > 900.0)) % 3;
            rows.push(r);
            labels.push(y);
        }
        let ds = Dataset::from_rows(&rows, &labels, None).unwrap();
        let tree = train_classifier(&ds, &TrainParams { max_depth: 5, ..Default::default() });
        let rules = generate_rules(&tree, 24);
        for _ in 0..50 {
            let probe: Vec<f32> = (0..4).map(|_| rng.random_range(0..(1 << 20)) as f32).collect();
            prop_assert_eq!(rules.classify(&probe), Some(tree.predict(&probe)));
        }
    }

    /// Plan-driven execution is observationally identical to the
    /// entry-walking reference interpreter: for random small programs and
    /// random packet sequences, both produce the same dispositions, pass
    /// counts, final PHVs, digests, meters, register contents, and table
    /// hit/miss statistics.
    #[test]
    fn plan_execution_equals_entrywalk(seed in 0u64..400) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let (program, fields) = random_program(&mut rng);
        let mut plan_pipe = Pipeline::new(program.clone());
        let mut walk_pipe = Pipeline::new(program);
        for n in 0..rng.random_range(4usize..14) {
            let mut phv = plan_pipe.program().layout().new_phv();
            for &f in &fields {
                phv.set(f, rng.random_range(0u64..6));
            }
            let ts = n as u64 * 10;
            let a = plan_pipe.process_phv(phv.clone(), ts);
            let b = walk_pipe.process_phv_entrywalk(phv, ts);
            prop_assert_eq!(a.disposition, b.disposition, "seed {} packet {}", seed, n);
            prop_assert_eq!(a.passes, b.passes, "seed {} packet {}", seed, n);
            prop_assert_eq!(a.phv, b.phv, "seed {} packet {}", seed, n);
        }
        prop_assert_eq!(plan_pipe.meters(), walk_pipe.meters());
        prop_assert_eq!(plan_pipe.digests(), walk_pipe.digests());
        prop_assert_eq!(
            format!("{:?}", plan_pipe.registers()),
            format!("{:?}", walk_pipe.registers())
        );
        // table statistics (hits per entry, misses per table)
        prop_assert_eq!(
            format!("{:?}", plan_pipe.program().tables()),
            format!("{:?}", walk_pipe.program().tables())
        );
    }

    /// The compiled match index resolves every lookup exactly as the
    /// linear reference scan does — over random table contents (all three
    /// match kinds, 0..90 entries straddling the ternary prefilter
    /// threshold), random priorities **including ties** (lowest install
    /// index must win), wildcards, overlapping and degenerate ranges, and
    /// random key streams.
    #[test]
    fn indexed_lookup_equals_linear(seed in 0u64..600) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        use splidt::dataplane::index::MatchIndex;
        use splidt::dataplane::table::{EntryKey, Table};

        let mut rng = SmallRng::seed_from_u64(seed);
        let n_fields = rng.random_range(1usize..4);
        let mut layout = splidt::dataplane::PhvLayout::new();
        let key: Vec<_> =
            (0..n_fields).map(|i| layout.add_field(format!("k{i}"), 16)).collect();
        let n_entries = rng.random_range(0usize..90);
        let kind = rng.random_range(0u8..3);
        let spec = match kind {
            0 => TableSpec::exact("t", key, n_entries + 1),
            1 => TableSpec::ternary("t", key, n_entries + 1),
            _ => TableSpec::range("t", key, n_entries + 1),
        };
        let mut table = Table::new(spec);
        for _ in 0..n_entries {
            // Few distinct priorities → plenty of ties.
            let priority = rng.random_range(0u32..4);
            let entry = match kind {
                0 => EntryKey::Exact(
                    (0..n_fields).map(|_| rng.random_range(0u64..32)).collect(),
                ),
                1 => EntryKey::Ternary {
                    fields: (0..n_fields)
                        .map(|_| match rng.random_range(0u8..3) {
                            0 => Ternary::ANY,
                            1 => Ternary::exact(rng.random_range(0u64..32), 16),
                            _ => Ternary::new(
                                rng.random_range(0u64..65536),
                                rng.random_range(0u64..65536),
                            ),
                        })
                        .collect(),
                    priority,
                },
                _ => EntryKey::Range {
                    fields: (0..n_fields)
                        .map(|_| {
                            let lo = rng.random_range(0u64..40);
                            // Degenerate single-point ranges included.
                            (lo, lo + rng.random_range(0u64..12))
                        })
                        .collect(),
                    priority,
                },
            };
            // Exact duplicates are rejected by install — skip those draws.
            let _ = table.install(entry, Action::new("e"));
        }
        let index = MatchIndex::build(&table);
        let mut scratch = Vec::new();
        for _ in 0..60 {
            // Mix uniform probes with probes snapped near installed
            // values so hits are common.
            let probe: Vec<u64> = (0..n_fields)
                .map(|_| {
                    if rng.random::<bool>() {
                        rng.random_range(0u64..64)
                    } else {
                        rng.random_range(0u64..65536)
                    }
                })
                .collect();
            prop_assert_eq!(
                index.lookup(&probe, &mut scratch),
                table.lookup_linear_key(&probe),
                "seed {} kind {} probe {:?}",
                seed,
                kind,
                probe
            );
        }
    }

    /// Window bounds partition every flow for every partition count.
    #[test]
    fn windows_partition(n in 1usize..600, p in 1usize..8) {
        let w = window_bounds(n, p);
        prop_assert_eq!(w[0].0, 0);
        prop_assert_eq!(w.last().unwrap().1, n);
        for pair in w.windows(2) {
            prop_assert_eq!(pair[0].1, pair[1].0);
        }
        prop_assert!(w.len() <= p);
    }

    /// The distinct-feature budget holds for arbitrary budgets and depths.
    #[test]
    fn feature_budget_respected(seed in 0u64..200, k in 1usize..5, depth in 1usize..7) {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for _ in 0..150 {
            let r: Vec<f32> = (0..8).map(|_| rng.random_range(0..100) as f32).collect();
            let y = ((r[0] as u16 / 25) + (r[3] as u16 / 30)) % 4;
            rows.push(r);
            labels.push(y);
        }
        let ds = Dataset::from_rows(&rows, &labels, None).unwrap();
        let tree = train_classifier(
            &ds,
            &TrainParams { max_depth: depth, feature_budget: Some(k), ..Default::default() },
        );
        prop_assert!(tree.features_used().len() <= k);
        prop_assert!(tree.depth() <= depth);
    }
}
