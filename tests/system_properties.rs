//! System-level property checks spanning crates: the orderings and
//! invariants the paper's evaluation rests on.

use splidt::core::baselines::{Ideal, Leo, LeoParams, NetBeacon, NetBeaconParams, PerPacket};
use splidt::core::{
    evaluate_partitioned, max_flows, model_rules, splidt_footprint, train_partitioned,
};
use splidt::flow::windowed_dataset;
use splidt::prelude::*;
use splidt::ranging::generate_rules;

fn split(id: DatasetId, n: usize, seed: u64) -> (Vec<FlowTrace>, Vec<FlowTrace>, usize) {
    let flows = generate(id, n, seed);
    let (tr, te) = stratified_split(&flows, 0.3, seed);
    (select_flows(&flows, &tr), select_flows(&flows, &te), spec(id).n_classes as usize)
}

/// The paper's headline ordering at a register-comparable budget:
/// per-packet < one-shot top-k (Leo) < SpliDT windows < ideal.
#[test]
fn accuracy_ordering_holds() {
    let (tr, te, nc) = split(DatasetId::D2, 1200, 1);
    let pp = PerPacket::train(&tr, nc, 8).evaluate(&te);
    let leo =
        Leo::train(&tr, nc, &LeoParams { k: 4, depth: 10, ..Default::default() }).evaluate(&te);
    let wd = windowed_dataset(&tr, 4, nc);
    let wd_te = windowed_dataset(&te, 4, nc);
    let cfg = SplidtConfig { partitions: vec![3, 3, 2, 2], k: 4, ..Default::default() };
    let sp =
        evaluate_partitioned(&train_partitioned(&wd, &cfg, &catalog().hardware_eligible()), &wd_te);
    let ideal = Ideal::train(&tr, nc, 16).evaluate(&te);
    assert!(pp < leo, "per-packet {pp} < leo {leo}");
    assert!(leo < sp, "leo {leo} < splidt {sp}");
    assert!(sp <= ideal + 0.05, "splidt {sp} ≲ ideal {ideal}");
}

/// SpliDT's total feature count scales past k while per-subtree stays ≤ k
/// and register cost stays flat — the crux of Figures 3 and 11.
#[test]
fn feature_scaling_with_flat_registers() {
    let (tr, _, nc) = split(DatasetId::D5, 900, 2);
    let mut prev_total = 0usize;
    for p in [1usize, 3, 5] {
        let cfg = SplidtConfig { partitions: vec![3; p], k: 4, ..Default::default() };
        let wd = windowed_dataset(&tr, p, nc);
        let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
        let fp = splidt_footprint(&model);
        assert_eq!(fp.feature_register_bits(), 4 * 32, "flat register cost");
        assert!(model.max_features_per_subtree() <= 4);
        let total = model.total_features().len();
        assert!(
            total + 1 >= prev_total,
            "feature count should tend to grow: {total} vs {prev_total}"
        );
        prev_total = prev_total.max(total);
    }
    assert!(prev_total > 4, "total features must exceed k: {prev_total}");
}

/// Range-Marking rules classify identically to the tree they encode —
/// across every subtree of a trained partitioned model.
#[test]
fn rules_equal_trees_for_all_subtrees() {
    let (tr, te, nc) = split(DatasetId::D3, 700, 3);
    let wd = windowed_dataset(&tr, 3, nc);
    let cfg = SplidtConfig { partitions: vec![3, 2, 2], k: 4, ..Default::default() };
    let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
    let wd_te = windowed_dataset(&te, 3, nc);
    for st in &model.subtrees {
        let rules = generate_rules(&st.tree, 24);
        let ds = &wd_te.per_window[st.partition];
        for i in 0..ds.n_samples().min(150) {
            let row = ds.row(i);
            assert_eq!(rules.classify(row), Some(st.tree.predict(row)), "sid {}", st.sid);
        }
    }
}

/// Feasibility is monotone: more flows can never make an infeasible model
/// feasible, and capacity falls as k rises.
#[test]
fn capacity_monotonicity() {
    let (tr, _, nc) = split(DatasetId::D2, 500, 4);
    let target = TargetSpec::tofino1();
    let mut last_cap = u64::MAX;
    for k in [1usize, 3, 6] {
        let cfg = SplidtConfig { partitions: vec![2, 2], k, ..Default::default() };
        let wd = windowed_dataset(&tr, 2, nc);
        let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
        let fp = splidt_footprint(&model);
        let cap = max_flows(&fp, &target);
        assert!(cap <= last_cap, "capacity must not grow with k");
        assert!(cap > 0);
        last_cap = cap;
    }
}

/// TCAM accounting is consistent between the summary and the compiled
/// program: installed ternary entries ≥ canonical entries (the compiled
/// model table carries flow-end duplicates).
#[test]
fn tcam_accounting_consistent() {
    let (tr, _, nc) = split(DatasetId::D6, 500, 5);
    let wd = windowed_dataset(&tr, 3, nc);
    let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
    let model = train_partitioned(&wd, &cfg, &catalog().hardware_eligible());
    let summary = model_rules(&model);
    let compiled = compile(&model, 1 << 14).unwrap();
    assert!(compiled.program.tcam_entries() >= summary.tcam_entries);
    // and the program fits the simulator's block-level Tofino1 model
    let report = splidt::dataplane::resources::check(&compiled.program, &TargetSpec::tofino1());
    assert!(report.feasible(), "{:?}", report.violations);
}

/// NetBeacon and Leo behave sanely on every dataset (trained models beat
/// chance, footprints are positive).
#[test]
fn baselines_sane_on_all_datasets() {
    for id in [DatasetId::D1, DatasetId::D4, DatasetId::D7] {
        let (tr, te, nc) = split(id, 700, 6);
        let nb =
            NetBeacon::train(&tr, nc, &NetBeaconParams { k: 4, depth: 8, ..Default::default() });
        let leo = Leo::train(&tr, nc, &LeoParams { k: 4, depth: 8, ..Default::default() });
        let chance = 1.5 / nc as f64;
        assert!(nb.evaluate(&te) > chance, "{}", id.tag());
        assert!(leo.evaluate(&te) > chance, "{}", id.tag());
        assert!(nb.footprint().tcam_entries > 0);
        assert!(leo.footprint().per_flow_bits() > 0);
    }
}
