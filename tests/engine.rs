//! Integration tests for the streaming engine API: batch-wrapper
//! equivalence, shard-count invariance, streaming ingestion, and the
//! backend-agnostic `Classifier` contract across all five model types.

use splidt::engine::DEFAULT_STAGGER_US;
use splidt::prelude::*;

fn model_and_flows(n_flows: usize, seed: u64) -> (PartitionedTree, Vec<FlowTrace>) {
    let id = DatasetId::D2;
    let nc = spec(id).n_classes as usize;
    let flows = generate(id, n_flows, seed);
    let (tr, te) = stratified_split(&flows, 0.4, seed ^ 3);
    let train_flows = select_flows(&flows, &tr);
    let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
    let model = PartitionedTree::fit(&train_flows, nc, &cfg).expect("trains");
    (model, select_flows(&flows, &te))
}

/// The old one-shot `run_flows` and an explicit `EngineBuilder` session
/// must produce identical reports — `run_flows` is now a thin wrapper.
#[test]
fn engine_matches_run_flows() {
    let (model, test_flows) = model_and_flows(260, 11);
    let wrapper = run_flows(&model, &test_flows, 1 << 16, 2_500).unwrap();
    let mut engine =
        EngineBuilder::new(&model).flow_slots(1 << 16).stagger_us(2_500).build().unwrap();
    let direct = engine.run(&test_flows).unwrap();
    assert_eq!(wrapper.flows, direct.flows);
    assert_eq!(wrapper.meters, direct.meters);
    assert_eq!(wrapper.collisions_skipped, direct.collisions_skipped);
    assert!((wrapper.f1 - direct.f1).abs() < 1e-12);
    assert!((wrapper.software_agreement - direct.software_agreement).abs() < 1e-12);
}

/// Acceptance: a 4-shard engine produces per-flow verdicts identical to
/// the single-shard engine on ≥200 staggered flows, with merged meters.
#[test]
fn sharded_engine_matches_single_shard() {
    let (model, _) = model_and_flows(260, 21);
    // ≥200 staggered flows through both engines.
    let traffic = generate(DatasetId::D2, 230, 77);
    assert!(traffic.len() >= 200);
    let builder = || EngineBuilder::new(&model).flow_slots(1 << 16).stagger_us(1_500);
    let single = builder().build_sharded(1).unwrap().run(&traffic).unwrap();
    let mut quad_engine = builder().build_sharded(4).unwrap();
    assert_eq!(quad_engine.n_shards(), 4);
    let quad = quad_engine.run(&traffic).unwrap();

    assert_eq!(single.flows.len(), quad.flows.len());
    assert!(single.flows.len() + single.collisions_skipped == traffic.len());
    // Per-flow verdicts identical, flow for flow.
    for (i, (a, b)) in single.flows.iter().zip(&quad.flows).enumerate() {
        assert_eq!(a, b, "flow {i} diverged between 1 and 4 shards");
    }
    // Merged meters equal the single pipeline's (every packet processed
    // exactly once on exactly one shard).
    assert_eq!(single.meters, quad.meters);
    assert!((single.f1 - quad.f1).abs() < 1e-12);
    assert_eq!(single.collisions_skipped, quad.collisions_skipped);
    // Work actually spread: with 4 shards no shard saw everything.
    let per_shard: Vec<u64> = quad_engine.shard_meters().iter().map(|m| m.packets).collect();
    assert_eq!(per_shard.iter().sum::<u64>(), quad.meters.packets);
    assert!(per_shard.iter().all(|&p| p > 0), "a shard sat idle: {per_shard:?}");
    assert!(per_shard.iter().all(|&p| p < quad.meters.packets));
}

/// The sharded engine also matches the plain single-pipeline engine.
#[test]
fn sharded_one_equals_engine() {
    let (model, test_flows) = model_and_flows(220, 31);
    let plain = EngineBuilder::new(&model).build().unwrap().run(&test_flows).unwrap();
    let sharded = EngineBuilder::new(&model).build_sharded(1).unwrap().run(&test_flows).unwrap();
    assert_eq!(plain.flows, sharded.flows);
    assert_eq!(plain.meters, sharded.meters);
}

/// Streaming ingestion (admit → per-frame ingest → drain → report) equals
/// the batch driver: the engine is genuinely incremental.
#[test]
fn streaming_ingest_equals_batch_run() {
    let (model, test_flows) = model_and_flows(200, 41);
    let mut batch = EngineBuilder::new(&model).build().unwrap();
    let batch_report = batch.run(&test_flows).unwrap();

    let mut streaming = EngineBuilder::new(&model).build().unwrap();
    // Admit flows one by one, then feed their frames in timestamp order,
    // draining digests mid-stream to prove collation survives draining.
    let mut events: Vec<(u64, usize, usize)> = Vec::new();
    let mut kept: Vec<&FlowTrace> = Vec::new();
    for f in &test_flows {
        if let Some(a) = streaming.admit(f) {
            kept.push(f);
            let idx = kept.len() - 1;
            for (j, p) in f.packets.iter().enumerate() {
                events.push((a.base_us + p.ts_us, idx, j));
            }
        }
    }
    events.sort_unstable();
    let mut drained = 0usize;
    for (n, (ts, i, j)) in events.iter().enumerate() {
        let frame = Engine::frame_for(kept[*i], *j);
        streaming.ingest(&frame, *ts).unwrap();
        if n % 97 == 0 {
            drained += streaming.drain_digests().len();
        }
    }
    drained += streaming.drain_digests().len();
    let stream_report = streaming.report();
    assert_eq!(drained as u64, stream_report.meters.digests);
    assert_eq!(batch_report.flows, stream_report.flows);
    assert_eq!(batch_report.meters, stream_report.meters);
}

/// `ingest_batch` is observationally identical to per-frame `ingest` —
/// same meters, same collated digests, same final report — while draining
/// digests once per batch on the allocation-free pipeline path.
#[test]
fn ingest_batch_equals_per_frame_ingest() {
    let (model, test_flows) = model_and_flows(210, 45);
    let build = || EngineBuilder::new(&model).stagger_us(2_000).build().unwrap();

    // Schedule identically on both engines.
    let mut per_frame = build();
    let mut batched = build();
    let mut events: Vec<(u64, usize, usize)> = Vec::new();
    let mut kept: Vec<&FlowTrace> = Vec::new();
    for f in &test_flows {
        let a = per_frame.admit(f);
        let b = batched.admit(f);
        assert_eq!(a, b);
        if let Some(a) = a {
            kept.push(f);
            let idx = kept.len() - 1;
            for (j, p) in f.packets.iter().enumerate() {
                events.push((a.base_us + p.ts_us, idx, j));
            }
        }
    }
    events.sort_unstable();
    let frames: Vec<(Vec<u8>, u64)> =
        events.iter().map(|&(ts, i, j)| (Engine::frame_for(kept[i], j), ts)).collect();

    for (frame, ts) in &frames {
        per_frame.ingest(frame, *ts).unwrap();
    }
    let batch = batched.ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts))).unwrap();

    assert_eq!(batch.packets as usize, frames.len());
    assert_eq!(batch.digests.len() as u64, batched.meters().digests);
    assert_eq!(per_frame.meters(), batched.meters());
    assert_eq!(per_frame.report().flows, batched.report().flows);
}

/// Sharded batch ingest routes every frame to the shard its flow hashes
/// to and produces the same aggregate state as a single-shard engine.
#[test]
fn sharded_ingest_batch_matches_single() {
    let (model, test_flows) = model_and_flows(220, 55);
    let mut single = EngineBuilder::new(&model).build().unwrap();
    let mut frames: Vec<(Vec<u8>, u64)> = Vec::new();
    for f in &test_flows {
        if let Some(a) = single.admit(f) {
            for (j, p) in f.packets.iter().enumerate() {
                frames.push((Engine::frame_for(f, j), a.base_us + p.ts_us));
            }
        }
    }
    frames.sort_by_key(|&(_, ts)| ts);
    let single_batch =
        single.ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts))).unwrap();

    let mut sharded = EngineBuilder::new(&model).build_sharded(4).unwrap();
    let sharded_batch = sharded.ingest_batch(&frames).unwrap();

    assert_eq!(single_batch.packets, sharded_batch.packets);
    assert_eq!(single_batch.drops, sharded_batch.drops);
    // Digest contents (slots, classes, timestamps) must match, not just
    // the count — a shard-routing bug would corrupt values first. Order
    // differs across shards, so compare as sorted multisets.
    let digest_key = |d: &splidt::dataplane::Digest| (d.ts_us, d.values.clone());
    let mut single_digests: Vec<_> = single_batch.digests.iter().map(digest_key).collect();
    let mut sharded_digests: Vec<_> = sharded_batch.digests.iter().map(digest_key).collect();
    single_digests.sort();
    sharded_digests.sort();
    assert_eq!(single_digests, sharded_digests);
    let mut merged = splidt::dataplane::Meters::default();
    for m in sharded.shard_meters() {
        merged.merge(m);
    }
    assert_eq!(&merged, single.meters());
}

/// A reset engine reuses its compiled program and reproduces the run.
#[test]
fn reset_reuses_compilation() {
    let (model, test_flows) = model_and_flows(200, 51);
    let mut engine = EngineBuilder::new(&model).build().unwrap();
    let first = engine.run(&test_flows).unwrap();
    engine.reset();
    assert_eq!(engine.admitted_flows(), 0);
    let second = engine.run(&test_flows).unwrap();
    assert_eq!(first.flows, second.flows);
    assert_eq!(first.meters, second.meters);
}

/// Regression: `reset` must clear the flow-state lifecycle too — slot
/// fingerprints, decided flags, and every counter — so a previously
/// *decided* flow re-admits and re-classifies after a reset instead of
/// being treated as a stale owner.
#[test]
fn reset_clears_lifecycle_and_readmits_decided_flow() {
    let (model, test_flows) = model_and_flows(200, 57);
    let one_flow = &test_flows[..1];
    let mut engine = EngineBuilder::new(&model).build().unwrap();
    let first = engine.run(one_flow).unwrap();
    assert_eq!(first.flows[0].digests, 1);
    let lc = engine.lifecycle();
    assert_eq!(lc.admitted, 1);
    // The verdict retires the slot: released outright (flow-end digest)
    // or parked decided (early exit, reclaimable on sight) — never still
    // active.
    assert_eq!(lc.active_flows, 0, "a decided flow must not stay active: {lc:?}");
    assert!(lc.evictions_decided + lc.decided_pending >= 1, "{lc:?}");
    assert!(lc.reconciles(), "{lc:?}");

    engine.reset();
    let cleared = engine.lifecycle();
    assert_eq!(cleared, splidt::core::LifecycleStats::default(), "reset must zero the lifecycle");

    // The same (previously decided) flow admits and classifies again.
    let second = engine.run(one_flow).unwrap();
    assert_eq!(second.flows, first.flows);
    assert_eq!(second.flows[0].digests, 1, "re-admitted flow must re-classify exactly once");
    assert_eq!(engine.lifecycle().admitted, 1);
}

/// Flows are learned from the wire: ingesting frames of flows that were
/// never pre-registered still claims slots, classifies, and reports
/// verdict digests with exact slot/fingerprint attribution.
#[test]
fn unregistered_flows_are_learned_from_the_wire() {
    let (model, test_flows) = model_and_flows(210, 63);
    let mut engine = EngineBuilder::new(&model).build().unwrap();
    let io = engine.io().clone();
    let subset = &test_flows[..6];
    let mut frames: Vec<(Vec<u8>, u64)> = Vec::new();
    for (i, f) in subset.iter().enumerate() {
        let base = 1_000 + i as u64 * 2_000;
        for j in 0..f.packets.len() {
            frames.push((Engine::frame_for(f, j), base + f.packets[j].ts_us));
        }
    }
    frames.sort_by_key(|&(_, ts)| ts);
    // No admit() calls anywhere: the data plane learns the flows itself.
    let report = engine.ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts))).unwrap();
    let lc = engine.lifecycle();
    assert_eq!(lc.admitted, subset.len() as u64);
    assert!(lc.reconciles(), "{lc:?}");
    let classified: std::collections::HashSet<u64> =
        report.digests.iter().map(|d| d.values[io.digest_flow_idx]).collect();
    assert_eq!(classified.len(), subset.len(), "every learned flow classifies");
    for f in subset {
        let slot = splidt::core::canonical_flow_index(f, engine.flow_slots()) as u64;
        assert!(classified.contains(&slot), "flow missing from digests");
    }
}

/// Sessions are cumulative: a second `run` without `reset` admits nothing
/// new for repeated flows, never replays packets, and the sharded engine
/// agrees with the single-shard one on the merged report.
#[test]
fn repeated_run_without_reset_is_cumulative() {
    let (model, test_flows) = model_and_flows(210, 91);
    let mut single = EngineBuilder::new(&model).build().unwrap();
    let first = single.run(&test_flows).unwrap();
    let second = single.run(&test_flows).unwrap();
    assert_eq!(first.flows, second.flows, "re-run must not change outcomes");
    assert_eq!(first.meters, second.meters, "re-run must not replay packets");
    assert_eq!(second.collisions_skipped, first.collisions_skipped + test_flows.len());

    let mut sharded = EngineBuilder::new(&model).build_sharded(3).unwrap();
    let s1 = sharded.run(&test_flows).unwrap();
    let s2 = sharded.run(&test_flows).unwrap();
    assert_eq!(s1.flows, s2.flows);
    assert_eq!(s1.meters, s2.meters);
    assert_eq!(s2.collisions_skipped, s1.collisions_skipped + test_flows.len());
    assert_eq!(s1.flows, first.flows, "sharded and single shard diverged");
}

/// Malformed frames are recoverable errors, not panics.
#[test]
fn malformed_frames_are_recoverable() {
    let (model, test_flows) = model_and_flows(200, 61);
    let mut engine = EngineBuilder::new(&model).build().unwrap();
    assert!(matches!(engine.ingest(&[0u8; 9], 1_000), Err(SplidtError::Parse(_))));
    // The engine keeps working after the error.
    let report = engine.run(&test_flows).unwrap();
    assert!((report.software_agreement - 1.0).abs() < 1e-9);
}

/// Invalid configurations surface as typed errors.
#[test]
fn builder_rejects_bad_config() {
    let (model, _) = model_and_flows(200, 71);
    assert!(matches!(
        EngineBuilder::new(&model).flow_slots(1000).build(),
        Err(SplidtError::Compile(_))
    ));
    assert!(matches!(EngineBuilder::new(&model).build_sharded(0), Err(SplidtError::Config(_))));
}

/// All five model families train and classify through the uniform
/// `Trainable`/`Classifier` contract.
#[test]
fn classifier_round_trip_over_all_backends() {
    let id = DatasetId::D2;
    let nc = spec(id).n_classes as usize;
    let flows = generate(id, 600, 17);
    let (tr, te) = stratified_split(&flows, 0.3, 3);
    let train_flows = select_flows(&flows, &tr);
    let test_flows = select_flows(&flows, &te);

    let cfg = SplidtConfig { partitions: vec![2, 2, 2], k: 4, ..Default::default() };
    let models: Vec<Box<dyn Classifier>> = vec![
        Box::new(PartitionedTree::fit(&train_flows, nc, &cfg).unwrap()),
        Box::new(NetBeacon::fit(&train_flows, nc, &NetBeaconParams::default()).unwrap()),
        Box::new(Leo::fit(&train_flows, nc, &LeoParams::default()).unwrap()),
        Box::new(PerPacket::fit(&train_flows, nc, &8).unwrap()),
        Box::new(Ideal::fit(&train_flows, nc, &14).unwrap()),
    ];
    let names: Vec<&str> = models.iter().map(|m| m.name()).collect();
    assert_eq!(names, vec!["splidt", "netbeacon", "leo", "per-packet", "ideal"]);
    for m in &models {
        assert_eq!(m.n_classes(), nc);
        // classify every test flow; verdicts must be valid classes
        for f in &test_flows {
            assert!((m.classify_flow(f).class as usize) < nc, "{} out of range", m.name());
        }
        let f1 = m.evaluate_flows(&test_flows);
        assert!((0.0..=1.0).contains(&f1), "{}: f1 {f1}", m.name());
        assert!(f1 > 0.15, "{}: above chance, got {f1}", m.name());
    }
    // Deployable models report footprints; unconstrained ones don't.
    assert!(models[0].footprint().is_some());
    assert!(models[1].footprint().is_some());
    assert!(models[2].footprint().is_some());
    assert!(models[3].footprint().is_none());
    assert!(models[4].footprint().is_none());
    // SpliDT's verdicts through the trait equal direct software inference
    // (training is deterministic, so refitting yields the same model).
    let splidt = &models[0];
    let direct = PartitionedTree::fit(&train_flows, nc, &cfg).unwrap();
    for f in test_flows.iter().take(40) {
        assert_eq!(
            splidt.classify_flow(f).class,
            direct.classify_flow(f).class,
            "trait and direct inference diverged"
        );
    }
}

/// Defaults are sane and exported.
#[test]
fn builder_defaults() {
    let (model, test_flows) = model_and_flows(200, 81);
    let mut engine = EngineBuilder::new(&model).build().unwrap();
    assert_eq!(engine.flow_slots(), 1 << 16);
    assert_eq!(DEFAULT_STAGGER_US, 5_000);
    let report = engine.run(&test_flows).unwrap();
    assert_eq!(report.collisions_skipped, 0);
    assert!(report.flows.iter().all(|o| o.digests == 1));
}

/// The burst knob changes execution scheduling, never observable
/// behavior: the same frame schedule at burst 1 (scalar), 8, and 64
/// produces identical reports, meters, flow outcomes, and the **exact**
/// digest stream (a single engine flushes waves in arrival order).
#[test]
fn burst_sizes_are_observationally_identical() {
    let (model, test_flows) = model_and_flows(210, 61);
    let run_at = |burst: usize| {
        let mut engine = EngineBuilder::new(&model).stagger_us(2_000).burst(burst).build().unwrap();
        assert_eq!(engine.burst(), burst);
        let mut frames: Vec<(Vec<u8>, u64)> = Vec::new();
        for f in &test_flows {
            if let Some(a) = engine.admit(f) {
                for (j, p) in f.packets.iter().enumerate() {
                    frames.push((Engine::frame_for(f, j), a.base_us + p.ts_us));
                }
            }
        }
        frames.sort_by_key(|&(_, ts)| ts);
        let batch = engine.ingest_batch(frames.iter().map(|(f, ts)| (f.as_slice(), *ts))).unwrap();
        let meters = engine.meters().clone();
        (batch, meters, engine.report().flows)
    };
    let (b1, m1, f1) = run_at(1);
    for burst in [8usize, 64] {
        let (b, m, f) = run_at(burst);
        assert_eq!(b1.packets, b.packets, "burst {burst} packet count diverged");
        assert_eq!(b1.drops, b.drops);
        assert_eq!(b1.resubmit_limited, b.resubmit_limited);
        assert_eq!(b1.malformed, b.malformed);
        assert_eq!(b1.digests, b.digests, "burst {burst} digest stream diverged");
        assert_eq!(m1, m, "burst {burst} meters diverged");
        assert_eq!(f1, f, "burst {burst} flow outcomes diverged");
    }
}
